package testbed

import (
	"fmt"

	"hydra/internal/bus"
	"hydra/internal/channel"
	"hydra/internal/core"
	"hydra/internal/depot"
	"hydra/internal/device"
	"hydra/internal/faults"
	"hydra/internal/hostos"
	"hydra/internal/netsim"
	"hydra/internal/nfs"
	"hydra/internal/obs"
	"hydra/internal/sim"
	"hydra/internal/syscall"
)

// System is a built Spec: every component instantiated on one engine,
// addressable by the names the Spec declared.
type System struct {
	Spec Spec
	Eng  *sim.Engine
	// Net is the inter-host network (nil when the Spec declared none).
	Net *netsim.Network
	// Injector replays the Spec's fault schedule (nil when none declared).
	Injector *faults.Injector
	// Tracer is the observability recorder (nil unless Spec.Trace was set).
	Tracer *obs.Tracer

	hosts     map[string]*HostSystem
	hostList  []*HostSystem
	devices   map[string]*device.Device
	stations  map[string]*netsim.Station
	nas       map[string]*NASSystem
	channels  map[string]channel.Config
	mutations []MutationOutcome
}

// MutationOutcomes returns the results of the Spec.Mutations schedule that
// have fired so far, in firing order.
func (sys *System) MutationOutcomes() []MutationOutcome { return sys.mutations }

// HostSystem is one built host with everything attached to it.
type HostSystem struct {
	Spec HostSpec
	// Eng is the engine this host's components run on: the shared
	// System.Eng normally, the host's private engine under
	// Spec.EnginePerHost.
	Eng     *sim.Engine
	Machine *hostos.Machine
	Bus     *bus.Bus
	// Devices holds the host's peripherals in declaration order.
	Devices []*device.Device
	// Stations holds the host's network endpoints in declaration order.
	Stations []*netsim.Station
	// Depot and Runtime are non-nil iff the HostSpec declared a runtime.
	Depot   *depot.Depot
	Runtime *core.Runtime
	// Apps holds the opened application sessions in declaration order.
	Apps []*core.App
	// Monitor is the running health monitor, if the HostSpec asked for one.
	Monitor *core.Monitor
	// IdleLoad is the running background load, if the HostSpec started one.
	IdleLoad *hostos.IdleLoad
	// VFS is the host's virtual file/net surface, non-nil iff the HostSpec
	// declared Syscalls (shared with the runtime's VFS when one exists).
	VFS *hostos.VFS
	// Syscalls holds the built host-syscall planes in device declaration
	// order, one per device the HostSpec.Syscalls selected.
	Syscalls []*SyscallSystem
}

// SyscallSystem is one built device↔host syscall plane.
type SyscallSystem struct {
	Device  *device.Device
	Channel *channel.Channel
	// Service is the host-side dispatcher; Issuer the device-side client,
	// already attached to its endpoint and ready to Issue.
	Service *syscall.Service
	Issuer  *syscall.Issuer
}

// Syscall returns the host's syscall plane for the named device, or nil.
func (h *HostSystem) Syscall(dev string) *SyscallSystem {
	for _, sc := range h.Syscalls {
		if sc.Device.Name() == dev {
			return sc
		}
	}
	return nil
}

// App returns the host's application session with the given name, or nil.
func (h *HostSystem) App(name string) *core.App {
	if h.Runtime == nil {
		return nil
	}
	return h.Runtime.App(name)
}

// Device returns the host device with the given name, or nil.
func (h *HostSystem) Device(name string) *device.Device {
	for _, d := range h.Devices {
		if d.Name() == name {
			return d
		}
	}
	return nil
}

// NASSystem is one built storage appliance.
type NASSystem struct {
	Spec    NASSpec
	Station *netsim.Station
	Store   *nfs.Store
	Server  *nfs.Server
}

// New creates a fresh engine from seed and builds spec on it.
func New(seed int64, spec Spec) (*System, error) {
	return Build(sim.NewEngine(seed), spec)
}

// Build instantiates spec on eng. Components are constructed strictly in
// declaration order — network, free stations, NAS appliances, then each
// host (machine, bus, devices, stations, depot+runtime, idle load) — so a
// given Spec always yields the same event sequence numbering and therefore
// bit-identical simulations for a fixed seed.
func Build(eng *sim.Engine, spec Spec) (*System, error) {
	sys := &System{
		Spec:     spec,
		Eng:      eng,
		hosts:    make(map[string]*HostSystem),
		devices:  make(map[string]*device.Device),
		stations: make(map[string]*netsim.Station),
		nas:      make(map[string]*NASSystem),
		channels: make(map[string]channel.Config),
	}

	for _, cs := range spec.Channels {
		if cs.Name == "" {
			return nil, fmt.Errorf("testbed: %s declares an unnamed channel profile", label(spec))
		}
		if _, dup := sys.channels[cs.Name]; dup {
			return nil, fmt.Errorf("testbed: duplicate channel profile %q", cs.Name)
		}
		cfg := cs.Config
		def := channel.DefaultConfig()
		if cfg.RingEntries == 0 {
			cfg.RingEntries = def.RingEntries
		}
		if cfg.MaxMessage == 0 {
			cfg.MaxMessage = def.MaxMessage
		}
		sys.channels[cs.Name] = cfg
	}

	if spec.Trace != nil {
		// Attach before any component construction so every machine, bus,
		// channel and runtime finds its shard on its engine.
		sys.Tracer = obs.NewTracer(*spec.Trace)
		sysLabel := spec.Name
		if sysLabel == "" {
			sysLabel = "system"
		}
		sys.Tracer.Attach(eng, sysLabel)
	}

	needsNet := len(spec.Stations) > 0 || len(spec.NAS) > 0
	for _, h := range spec.Hosts {
		needsNet = needsNet || len(h.Stations) > 0
	}
	if spec.EnginePerHost {
		// These components all schedule on one shared clock; a split-clock
		// build would silently couple engines and break window parallelism.
		if spec.Net != nil || needsNet {
			return nil, fmt.Errorf("testbed: %s: EnginePerHost excludes Net/Stations/NAS", label(spec))
		}
		if len(spec.Faults) > 0 {
			return nil, fmt.Errorf("testbed: %s: EnginePerHost excludes Faults", label(spec))
		}
	}
	if spec.Net != nil {
		sys.Net = netsim.New(eng, spec.Net.Config)
	} else if needsNet {
		return nil, fmt.Errorf("testbed: %s declares stations or NAS but no Net", label(spec))
	}

	for _, name := range spec.Stations {
		if _, err := sys.attach(name); err != nil {
			return nil, err
		}
	}

	for _, n := range spec.NAS {
		st, err := sys.attach(n.Station)
		if err != nil {
			return nil, err
		}
		store := nfs.NewStore()
		for _, f := range n.Files {
			store.Put(f.Path, f.Data)
		}
		cfg := n.Config
		if cfg == (nfs.ServerConfig{}) {
			cfg = nfs.DefaultServerConfig()
		}
		sys.nas[n.Station] = &NASSystem{
			Spec:    n,
			Station: st,
			Store:   store,
			Server:  nfs.NewServer(eng, st, store, cfg),
		}
	}

	for _, h := range spec.Hosts {
		if h.Name == "" {
			return nil, fmt.Errorf("testbed: %s has an unnamed host", label(spec))
		}
		if _, dup := sys.hosts[h.Name]; dup {
			return nil, fmt.Errorf("testbed: duplicate host %q", h.Name)
		}
		cpu := h.CPU
		if cpu.CPUFreqHz == 0 {
			cpu = hostos.PentiumIV()
		}
		busCfg := h.Bus
		if busCfg == (bus.Config{}) {
			busCfg = bus.DefaultConfig()
		}
		heng := eng
		if spec.EnginePerHost {
			// Derive the host engine seed with the same golden-ratio mix
			// NewRand uses, keyed by host position: deterministic for a
			// fixed build seed, distinct per host.
			const mix = int64(-0x61c8864680b583eb)
			heng = sim.NewEngine(eng.Seed() ^ (int64(len(sys.hostList)+1) * mix))
			if sys.Tracer != nil {
				sys.Tracer.Attach(heng, h.Name)
			}
		}
		hs := &HostSystem{Spec: h, Eng: heng}
		hs.Machine = hostos.New(heng, h.Name, cpu)
		hs.Bus = bus.New(heng, busCfg)
		for _, dc := range h.Devices {
			if dc.Name == "" {
				return nil, fmt.Errorf("testbed: host %q has an unnamed device", h.Name)
			}
			if _, dup := sys.devices[dc.Name]; dup {
				return nil, fmt.Errorf("testbed: duplicate device %q", dc.Name)
			}
			d := device.New(heng, hs.Machine, hs.Bus, dc)
			hs.Devices = append(hs.Devices, d)
			sys.devices[dc.Name] = d
		}
		for _, name := range h.Stations {
			st, err := sys.attach(name)
			if err != nil {
				return nil, err
			}
			hs.Stations = append(hs.Stations, st)
		}
		if h.Runtime != nil {
			hs.Depot = depot.New()
			hs.Runtime = core.New(heng, hs.Machine, hs.Bus, hs.Depot, *h.Runtime)
			for _, d := range hs.Devices {
				hs.Runtime.RegisterDevice(d)
			}
			for _, as := range h.Apps {
				if as.Name == "" {
					return nil, fmt.Errorf("testbed: host %q declares an unnamed app", h.Name)
				}
				app, err := hs.Runtime.OpenApp(as.Name, as.Config)
				if err != nil {
					return nil, fmt.Errorf("testbed: host %q: %w", h.Name, err)
				}
				hs.Apps = append(hs.Apps, app)
			}
			if h.Monitor != nil {
				hs.Monitor = hs.Runtime.StartMonitor(*h.Monitor)
			}
		} else if h.Monitor != nil {
			return nil, fmt.Errorf("testbed: host %q declares a Monitor but no Runtime", h.Name)
		} else if len(h.Apps) > 0 {
			return nil, fmt.Errorf("testbed: host %q declares Apps but no Runtime", h.Name)
		}
		if h.Syscalls != nil {
			if err := sys.buildSyscalls(hs, h.Syscalls); err != nil {
				return nil, err
			}
		}
		if h.IdleLoad != nil {
			hs.IdleLoad = hs.Machine.StartIdleLoad(*h.IdleLoad)
		}
		sys.hosts[h.Name] = hs
		sys.hostList = append(sys.hostList, hs)
	}

	if len(spec.Faults) > 0 {
		sys.Injector = faults.NewInjector(eng)
		if err := sys.Injector.Arm(spec.Faults, sys); err != nil {
			return nil, err
		}
	}
	for i, m := range spec.Mutations {
		if err := sys.armMutation(i, m); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

// buildSyscalls wires one host-syscall plane per selected device: a
// dedicated batched channel carrying call-coded requests device→host and
// completions host→device, a dispatcher Service over the host VFS, and an
// attached Issuer on the device side. Hosts with a runtime share the
// runtime's VFS so session-opened planes see the same namespace.
func (sys *System) buildSyscalls(hs *HostSystem, sc *SyscallSpec) error {
	if hs.Runtime != nil {
		hs.VFS = hs.Runtime.VFS()
	} else {
		hs.VFS = hostos.NewVFS(hs.Machine)
	}
	for _, f := range sc.Files {
		hs.VFS.Preload(f.Path, f.Data)
	}
	devs := hs.Devices
	if len(sc.Devices) > 0 {
		devs = devs[:0:0]
		for _, name := range sc.Devices {
			d := hs.Device(name)
			if d == nil {
				return fmt.Errorf("testbed: host %q syscalls name unknown device %q", hs.Spec.Name, name)
			}
			devs = append(devs, d)
		}
	}
	if len(devs) == 0 {
		return fmt.Errorf("testbed: host %q declares Syscalls but has no devices", hs.Spec.Name)
	}
	for _, d := range devs {
		host := channel.HostEndpoint(hs.Machine, "syscall:"+hs.Spec.Name)
		ch, err := channel.New(hs.Eng, hs.Bus, sc.Profile.ChannelConfig(), host)
		if err != nil {
			return fmt.Errorf("testbed: host %q syscall channel: %w", hs.Spec.Name, err)
		}
		dend := channel.DeviceEndpoint(d, "syscall@"+d.Name())
		if err := ch.Connect(dend); err != nil {
			return fmt.Errorf("testbed: host %q syscall channel: %w", hs.Spec.Name, err)
		}
		svc := syscall.NewService(hs.VFS, sc.Profile)
		svc.Attach(host)
		iss := syscall.NewIssuer(d, sc.Profile, nil)
		iss.Attach(dend)
		hs.Syscalls = append(hs.Syscalls, &SyscallSystem{Device: d, Channel: ch, Service: svc, Issuer: iss})
	}
	return nil
}

// armMutation validates one MutationSpec against the built hosts and
// schedules the hot-swap on the owning host's engine. The mutation is armed
// after construction, so under EnginePerHost it fires inside the host's own
// clock domain; cluster drivers that need the swap between conservative
// windows should use cluster.Coordinator.Mutate instead.
func (sys *System) armMutation(i int, m MutationSpec) error {
	hs := sys.hosts[m.Host]
	if hs == nil {
		return fmt.Errorf("testbed: mutation %d names unknown host %q", i, m.Host)
	}
	if hs.Runtime == nil {
		return fmt.Errorf("testbed: mutation %d: host %q has no runtime", i, m.Host)
	}
	app := hs.Runtime.DefaultApp()
	if m.App != "" {
		if app = hs.Runtime.App(m.App); app == nil {
			return fmt.Errorf("testbed: mutation %d: host %q has no app %q", i, m.Host, m.App)
		}
	}
	if m.Bind == "" || m.Path == "" {
		return fmt.Errorf("testbed: mutation %d on host %q needs Bind and Path", i, m.Host)
	}
	spec := m
	hs.Eng.At(m.At, func() {
		app.Replace(spec.Bind, spec.Path, func(res *core.MutationResult, err error) {
			sys.mutations = append(sys.mutations, MutationOutcome{Spec: spec, Result: res, Err: err})
		})
	})
	return nil
}

func (sys *System) attach(name string) (*netsim.Station, error) {
	if name == "" {
		return nil, fmt.Errorf("testbed: %s declares an unnamed station", label(sys.Spec))
	}
	if _, dup := sys.stations[name]; dup {
		return nil, fmt.Errorf("testbed: duplicate station %q", name)
	}
	st := sys.Net.Attach(name)
	sys.stations[name] = st
	return st, nil
}

func label(spec Spec) string {
	if spec.Name != "" {
		return fmt.Sprintf("spec %q", spec.Name)
	}
	return "spec"
}

// Host returns the built host with the given name, or nil.
func (sys *System) Host(name string) *HostSystem { return sys.hosts[name] }

// Hosts returns every built host in declaration order.
func (sys *System) Hosts() []*HostSystem { return sys.hostList }

// RuntimeHosts returns the hosts that carry a HYDRA runtime, in
// declaration order — the placement backends a cluster coordinator
// schedules over. Pure traffic-generator hosts are excluded.
func (sys *System) RuntimeHosts() []*HostSystem {
	out := make([]*HostSystem, 0, len(sys.hostList))
	for _, h := range sys.hostList {
		if h.Runtime != nil {
			out = append(out, h)
		}
	}
	return out
}

// Device returns the device with the given name from any host, or nil.
func (sys *System) Device(name string) *device.Device { return sys.devices[name] }

// Bus returns the named host's I/O interconnect, or nil. Together with
// Device this makes a System a faults.Targets.
func (sys *System) Bus(host string) *bus.Bus {
	if h := sys.hosts[host]; h != nil {
		return h.Bus
	}
	return nil
}

// ChannelConfig returns the named channel profile's (defaulted) config.
func (sys *System) ChannelConfig(name string) (channel.Config, bool) {
	cfg, ok := sys.channels[name]
	return cfg, ok
}

// OpenChannel instantiates the named channel profile between a host and a
// device: the creator endpoint runs on the host (an OA-application side),
// the peer endpoint on the device (the Offcode side). Returned in that
// order alongside the channel itself.
func (sys *System) OpenChannel(profile, host, dev string) (*channel.Channel, *channel.Endpoint, *channel.Endpoint, error) {
	cfg, ok := sys.channels[profile]
	if !ok {
		return nil, nil, nil, fmt.Errorf("testbed: unknown channel profile %q", profile)
	}
	h := sys.hosts[host]
	if h == nil {
		return nil, nil, nil, fmt.Errorf("testbed: unknown host %q", host)
	}
	// Resolve the device on this host specifically: a channel rides the
	// host's own bus, so a device attached elsewhere must be rejected, not
	// silently wired across fabrics.
	d := h.Device(dev)
	if d == nil {
		return nil, nil, nil, fmt.Errorf("testbed: host %q has no device %q", host, dev)
	}
	app := channel.HostEndpoint(h.Machine, profile+":"+host)
	ch, err := channel.New(h.Eng, h.Bus, cfg, app)
	if err != nil {
		return nil, nil, nil, err
	}
	oc := channel.DeviceEndpoint(d, profile+":"+dev)
	if err := ch.Connect(oc); err != nil {
		return nil, nil, nil, err
	}
	return ch, app, oc, nil
}

// Station returns the network station with the given name, or nil.
func (sys *System) Station(name string) *netsim.Station { return sys.stations[name] }

// NAS returns the storage appliance at the given station name, or nil.
func (sys *System) NAS(station string) *NASSystem { return sys.nas[station] }

func (sys *System) String() string {
	return fmt.Sprintf("testbed(%s: %d hosts, %d devices, %d NAS, seed=%d)",
		label(sys.Spec), len(sys.hostList), len(sys.devices), len(sys.nas), sys.Eng.Seed())
}
