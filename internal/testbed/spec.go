// Package testbed turns declarative hardware-topology descriptions into
// running simulations.
//
// Every experiment, example and benchmark in this repository used to
// hand-wire the same construction sequence — engine → host → bus → devices
// → depot → runtime → network — with small variations. A Spec captures that
// fabric as data: hosts with CPU profiles, per-host buses, heterogeneous
// programmable devices (NIC / GPU / smart-disk classes), Offcode runtimes,
// NAS appliances and the switched network joining them. Build instantiates
// a Spec on a simulation engine, and Sweep runs many replicas of a scenario
// on independent engines across a worker pool, one engine per replica, so
// per-seed results are bit-identical to serial runs while the wall clock
// scales with the core count.
//
// A four-host fabric with a NIC, GPU and disk per host is a few lines:
//
//	spec := testbed.Spec{Net: &testbed.NetSpec{Config: netsim.GigabitSwitched()}}
//	for i := 0; i < 4; i++ {
//		name := fmt.Sprintf("h%d", i)
//		spec.Hosts = append(spec.Hosts, testbed.HostSpec{
//			Name: name,
//			Devices: []device.Config{
//				device.XScaleNIC(name + "-nic"),
//				device.GPU(name + "-gpu"),
//				device.SmartDisk(name + "-disk"),
//			},
//			Stations: []string{name},
//			Runtime:  &core.Config{},
//		})
//	}
//	sys, err := testbed.New(seed, spec)
//
// See DESIGN.md for where this layer sits in the architecture.
package testbed

import (
	"hydra/internal/bus"
	"hydra/internal/channel"
	"hydra/internal/core"
	"hydra/internal/device"
	"hydra/internal/faults"
	"hydra/internal/hostos"
	"hydra/internal/netsim"
	"hydra/internal/nfs"
	"hydra/internal/obs"
	"hydra/internal/sim"
	"hydra/internal/syscall"
)

// Spec is a complete testbed topology. The zero value is an empty world;
// Build fills in defaults for anything left unset (PentiumIV CPUs, PCI
// buses). Construction order follows declaration order, which keeps event
// sequence numbers — and therefore same-instant event ordering — stable
// for a given Spec.
type Spec struct {
	// Name labels the topology in diagnostics.
	Name string
	// Net, when set, creates the switched network joining the hosts.
	// Required if any NAS, host Stations, or free Stations are declared.
	Net *NetSpec
	// Stations are free-standing network endpoints owned by no host
	// (traffic sources/sinks in microbenchmarks).
	Stations []string
	// NAS declares network-attached storage appliances, built before hosts
	// so servers are listening by the time any host logic runs.
	NAS []NASSpec
	// Hosts are the machines of the testbed, built in order.
	Hosts []HostSpec
	// Faults, when non-empty, is the declarative fault schedule replayed
	// against the built system: device crashes/hangs/restarts by device
	// name, bus degradation and outages by host name. Build validates every
	// name and arms the schedule on a seed-derived injector, so fault
	// histories are replica-private and bit-identical for a fixed seed.
	Faults faults.Schedule
	// Channels declares named channel configuration profiles — ring depth,
	// zero-copy policy, batching and interrupt coalescing — so scenarios
	// tune the host↔device hot path declaratively. Build validates the
	// names; System.OpenChannel instantiates a profile between a host and
	// one of its devices.
	Channels []ChannelSpec
	// EnginePerHost gives every host its own simulation engine (seeded
	// deterministically from the build seed) instead of sharing one
	// clock. A cluster coordinator can then execute hosts in parallel
	// under a conservative window (sim.Group) — the per-host engines
	// interact only through bridge links with positive latency. The mode
	// excludes the components that inherently share one clock: Net,
	// Stations, NAS and Faults all require a single engine and are
	// rejected by Build when this is set.
	EnginePerHost bool
	// Trace, when set, attaches an obs.Tracer to the built system: one
	// shard on the system engine plus one per private host engine under
	// EnginePerHost, attached in declaration order so shard indices —
	// and therefore merged traces — are deterministic. Components built
	// afterwards (machines, buses, channels, runtimes) pick their shard
	// up from their engine automatically. Read the trace via
	// System.Tracer.
	Trace *obs.Config
	// Mutations is the declarative live-mutation schedule: at each entry's
	// virtual time, the named host's session hot-swaps the Offcode deployed
	// as Bind with the ODF at Path (core.App.Replace — quiesce, checkpoint
	// carry-over, replay, rollback on failure). Build validates the host
	// and app names and arms the schedule on each host's engine; outcomes
	// accumulate on System.MutationOutcomes in firing order.
	Mutations []MutationSpec
}

// MutationSpec schedules one live hot-swap against a built system.
type MutationSpec struct {
	// Host names the runtime host whose deployment mutates.
	Host string
	// App names the session owning the deployment ("" = the runtime's
	// default session).
	App string
	// At is the virtual time the mutation fires.
	At sim.Time
	// Bind is the live root to replace; Path is the replacement ODF.
	Bind string
	Path string
}

// MutationOutcome records one fired MutationSpec.
type MutationOutcome struct {
	Spec   MutationSpec
	Result *core.MutationResult
	Err    error
}

// ChannelSpec names one channel configuration profile on a Spec.
type ChannelSpec struct {
	// Name identifies the profile; must be unique and non-empty.
	Name string
	// Config is the channel configuration; zero RingEntries/MaxMessage are
	// filled from channel.DefaultConfig.
	Config channel.Config
}

// NetSpec configures the inter-host network.
type NetSpec struct {
	Config netsim.Config
}

// FileSpec is one file pre-loaded onto a NAS. A slice (not a map) so that
// load order is deterministic.
type FileSpec struct {
	Path string
	Data []byte
}

// NASSpec declares one network-attached storage appliance: a station on
// the network running an NFS server over an in-memory store.
type NASSpec struct {
	// Station names the NAS on the network (NFS clients dial this name).
	Station string
	// Config is the NFS service model; zero value → nfs.DefaultServerConfig.
	Config nfs.ServerConfig
	// Files are pre-loaded into the store in order.
	Files []FileSpec
}

// HostSpec declares one host machine: CPU profile, I/O bus, attached
// programmable devices, network stations, and (optionally) a HYDRA runtime
// with its Offcode depot.
type HostSpec struct {
	// Name identifies the host; must be unique and non-empty.
	Name string
	// CPU is the host profile; zero value → hostos.PentiumIV().
	CPU hostos.Config
	// Bus is the host I/O interconnect; zero value → bus.DefaultConfig().
	Bus bus.Config
	// Devices are programmable peripherals attached to the host bus, built
	// in order. Device names must be unique across the whole Spec.
	Devices []device.Config
	// Stations are network endpoints owned by this host (a host may own
	// several: e.g. its NIC's link and a smart disk's private link).
	Stations []string
	// Runtime, when non-nil, gives the host a HYDRA runtime plus an empty
	// Offcode depot, with every declared device registered as an offload
	// target. nil hosts get neither (pure traffic generators / baselines).
	Runtime *core.Config
	// Apps declares application sessions to open on the runtime (requires
	// Runtime), in order, so multi-tenant workloads are topology data:
	// each entry becomes a core.App with its quotas and device-memory
	// admission reservation already applied. Sessions are opened after
	// every device is registered, so admission sees the full capacity.
	Apps []AppSpec
	// Monitor, when non-nil (requires Runtime), starts the runtime health
	// monitor over the host's devices: heartbeat probing, failure
	// detection, and automatic Offcode migration onto surviving targets.
	Monitor *core.MonitorConfig
	// IdleLoad, when non-nil, starts background daemons after construction
	// (the paper's "idle system" baseline).
	IdleLoad *hostos.IdleLoadConfig
	// Syscalls, when non-nil, gives the named devices (default: every
	// declared device) a host-syscall plane at build time: a dedicated
	// batched channel into a dispatcher executing against the host's VFS,
	// plus a ready-made issuer on the device side. Hosts with a Runtime
	// share the runtime's VFS, so testbed-built planes and session-opened
	// planes (core.App.OpenSyscalls) see one namespace.
	Syscalls *SyscallSpec
}

// SyscallSpec declares build-time host-syscall planes on a host.
type SyscallSpec struct {
	// Devices selects which of the host's devices get a plane; empty means
	// all of them, in declaration order.
	Devices []string
	// Profile sizes every plane: channel batch/coalesce geometry, in-flight
	// credit limit and dispatcher pool width. Zero fields take the
	// syscall package defaults.
	Profile syscall.Profile
	// Files are pre-loaded into the host's VFS in order.
	Files []FileSpec
}

// AppSpec declares one application session on a host's runtime.
type AppSpec struct {
	// Name identifies the session; must be unique on its host's runtime
	// and non-empty.
	Name string
	// Config carries the session's quotas and admission reservation.
	Config core.AppConfig
}

// DefaultIdleLoad returns a pointer to hostos.DefaultIdleLoad, the common
// HostSpec.IdleLoad value.
func DefaultIdleLoad() *hostos.IdleLoadConfig {
	cfg := hostos.DefaultIdleLoad()
	return &cfg
}
