// Package ilp solves small 0-1 integer linear programs.
//
// Section 5 of the paper expresses the offloading layout problem as an ILP —
// binary placement variables X^k_n with Pull/Gang/Asymmetric-Gang equations
// and objectives such as "Maximized Offloading" and "Maximize Bus Usage" —
// and notes that "any ILP solver can then be used". The runtime is offline
// and stdlib-only, so this package supplies that solver: branch and bound
// over binary variables with LP-relaxation bounds computed by a dense
// two-phase simplex.
package ilp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is a constraint direction.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // a·x ≤ b
	EQ              // a·x = b
	GE              // a·x ≥ b
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	}
	return "?"
}

// Constraint is one linear row over a sparse set of variables.
type Constraint struct {
	Coeffs map[int]float64
	Sense  Sense
	RHS    float64
	Label  string // diagnostic tag, e.g. "pull(streamer,file)"
}

// Problem is a maximization over binary variables.
type Problem struct {
	NumVars     int
	Objective   []float64 // len NumVars; maximize Objective·x
	Constraints []Constraint
}

// AddConstraint appends a row.
func (p *Problem) AddConstraint(c Constraint) { p.Constraints = append(p.Constraints, c) }

// Validate checks indices and shapes.
func (p *Problem) Validate() error {
	if p.NumVars <= 0 {
		return errors.New("ilp: no variables")
	}
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("ilp: objective has %d coefficients for %d variables", len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) == 0 {
			return fmt.Errorf("ilp: constraint %d (%s) is empty", i, c.Label)
		}
		for v := range c.Coeffs {
			if v < 0 || v >= p.NumVars {
				return fmt.Errorf("ilp: constraint %d (%s) references variable %d", i, c.Label, v)
			}
		}
	}
	return nil
}

// Solution is the solver output.
type Solution struct {
	X         []int // binary assignment
	Objective float64
	Nodes     int  // branch-and-bound nodes explored
	Optimal   bool // proven optimal (always true on success)
}

// ErrInfeasible is returned when no binary assignment satisfies the rows.
var ErrInfeasible = errors.New("ilp: infeasible")

// Options tunes the solver.
type Options struct {
	MaxNodes int // node budget; 0 means a generous default
}

const intTol = 1e-6

// Solve finds a provably optimal binary assignment, or ErrInfeasible.
func Solve(p *Problem, opts Options) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 200_000
	}

	s := &solver{p: p, maxNodes: maxNodes, bestObj: math.Inf(-1)}
	fixed := make([]int8, p.NumVars) // -1 free, 0 fixed zero, 1 fixed one
	for i := range fixed {
		fixed[i] = -1
	}
	s.branch(fixed)
	if s.nodeLimit {
		return nil, fmt.Errorf("ilp: node budget (%d) exhausted", maxNodes)
	}
	if s.best == nil {
		return nil, ErrInfeasible
	}
	return &Solution{X: s.best, Objective: s.bestObj, Nodes: s.nodes, Optimal: true}, nil
}

type solver struct {
	p         *Problem
	nodes     int
	maxNodes  int
	best      []int
	bestObj   float64
	nodeLimit bool
}

func (s *solver) branch(fixed []int8) {
	if s.nodeLimit {
		return
	}
	s.nodes++
	if s.nodes > s.maxNodes {
		s.nodeLimit = true
		return
	}

	relax, feasible := solveRelaxation(s.p, fixed)
	if !feasible {
		return
	}
	// Bound: the LP optimum dominates every completion of this node.
	if relax.value <= s.bestObj+1e-9 {
		return
	}

	// Find the most fractional variable.
	branchVar := -1
	worst := intTol
	for i, x := range relax.x {
		if fixed[i] >= 0 {
			continue
		}
		frac := math.Abs(x - math.Round(x))
		if frac > worst {
			worst = frac
			branchVar = i
		}
	}
	if branchVar < 0 {
		// Integral: candidate incumbent.
		xint := make([]int, len(relax.x))
		for i, x := range relax.x {
			if fixed[i] >= 0 {
				xint[i] = int(fixed[i])
			} else {
				xint[i] = int(math.Round(x))
			}
		}
		obj := 0.0
		for i, c := range s.p.Objective {
			obj += c * float64(xint[i])
		}
		if obj > s.bestObj {
			s.bestObj = obj
			s.best = xint
		}
		return
	}

	// Depth-first, exploring the rounding the relaxation prefers first.
	first, second := int8(1), int8(0)
	if relax.x[branchVar] < 0.5 {
		first, second = 0, 1
	}
	for _, v := range []int8{first, second} {
		child := make([]int8, len(fixed))
		copy(child, fixed)
		child[branchVar] = v
		s.branch(child)
	}
}
