package ilp

import "math"

// LP relaxation of the 0-1 problem at a branch-and-bound node: free
// variables range over [0,1], fixed variables are substituted out.
//
// The solver is a dense two-phase primal simplex on the standard-form
// tableau, using Bland's rule (least-index pivoting) so it cannot cycle.
// Layout problems are small — tens of variables, around a hundred rows —
// so dense tableau arithmetic is the simple and fast choice.

type relaxResult struct {
	x     []float64 // full-length assignment (fixed vars filled in)
	value float64   // objective value including fixed contributions
}

const (
	lpEps = 1e-9
)

// solveRelaxation maximizes p.Objective over the LP relaxation with the
// given fixings. It reports feasible=false when the region is empty.
func solveRelaxation(p *Problem, fixed []int8) (relaxResult, bool) {
	// Map free variables to contiguous LP columns.
	col := make([]int, p.NumVars)
	var free []int
	for i := range col {
		if fixed[i] < 0 {
			col[i] = len(free)
			free = append(free, i)
		} else {
			col[i] = -1
		}
	}
	n := len(free)

	fixedObj := 0.0
	for i, f := range fixed {
		if f == 1 {
			fixedObj += p.Objective[i]
		}
	}

	// Build rows: the problem constraints (with fixed terms moved to the
	// RHS) plus an upper bound x_j ≤ 1 per free variable.
	type row struct {
		a     []float64
		sense Sense
		b     float64
	}
	var rows []row
	for _, c := range p.Constraints {
		a := make([]float64, n)
		b := c.RHS
		touched := false
		for v, coef := range c.Coeffs {
			if fixed[v] >= 0 {
				b -= coef * float64(fixed[v])
				continue
			}
			a[col[v]] += coef
			touched = true
		}
		if !touched {
			// Fully fixed row: check it directly.
			switch c.Sense {
			case LE:
				if b < -lpEps {
					return relaxResult{}, false
				}
			case GE:
				if b > lpEps {
					return relaxResult{}, false
				}
			case EQ:
				if math.Abs(b) > lpEps {
					return relaxResult{}, false
				}
			}
			continue
		}
		rows = append(rows, row{a: a, sense: c.Sense, b: b})
	}
	for j := 0; j < n; j++ {
		a := make([]float64, n)
		a[j] = 1
		rows = append(rows, row{a: a, sense: LE, b: 1})
	}

	if n == 0 {
		return relaxResult{x: fixedX(p, fixed), value: fixedObj}, true
	}

	// Standard form: normalize b ≥ 0, add slack/surplus/artificial columns.
	m := len(rows)
	// Column plan: [0,n) structural, then one slack/surplus per LE/GE row,
	// then artificials for GE/EQ rows.
	numSlack := 0
	for _, r := range rows {
		if r.sense == LE || r.sense == GE {
			numSlack++
		}
	}
	numArt := 0
	for _, r := range rows {
		if r.sense != LE || r.b < 0 { // after normalization some LE become GE
			// counted precisely below; this is an upper bound
			numArt++
		}
	}
	_ = numArt

	// Normalize senses with b >= 0 first.
	for i := range rows {
		if rows[i].b < 0 {
			for j := range rows[i].a {
				rows[i].a[j] = -rows[i].a[j]
			}
			rows[i].b = -rows[i].b
			switch rows[i].sense {
			case LE:
				rows[i].sense = GE
			case GE:
				rows[i].sense = LE
			}
		}
	}
	// Count exact column needs.
	numSlack = 0
	numArt = 0
	for _, r := range rows {
		switch r.sense {
		case LE:
			numSlack++
		case GE:
			numSlack++ // surplus
			numArt++
		case EQ:
			numArt++
		}
	}
	total := n + numSlack + numArt
	// Tableau: m rows × (total+1) columns (last is RHS).
	t := make([][]float64, m)
	basis := make([]int, m)
	slackAt := n
	artAt := n + numSlack
	artCols := make([]int, 0, numArt)
	for i, r := range rows {
		t[i] = make([]float64, total+1)
		copy(t[i], r.a)
		t[i][total] = r.b
		switch r.sense {
		case LE:
			t[i][slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			t[i][slackAt] = -1
			slackAt++
			t[i][artAt] = 1
			basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		case EQ:
			t[i][artAt] = 1
			basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		}
	}

	// Phase 1: minimize the sum of artificials (maximize the negation).
	if len(artCols) > 0 {
		isArt := make([]bool, total)
		for _, c := range artCols {
			isArt[c] = true
		}
		cost := make([]float64, total)
		for _, c := range artCols {
			cost[c] = -1
		}
		val := simplexRun(t, basis, cost, total)
		if val < -lpEps {
			return relaxResult{}, false // artificials cannot be driven out
		}
		// Pivot any artificial still basic (at zero level) out if possible.
		for i := range basis {
			if !isArt[basis[i]] {
				continue
			}
			pivoted := false
			for j := 0; j < n+numSlack; j++ {
				if math.Abs(t[i][j]) > lpEps {
					pivot(t, basis, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; zero it (harmless: the artificial stays
				// basic at level 0 and never re-enters with cost 0).
				_ = pivoted
			}
		}
		// Remove artificial columns from consideration by zeroing them.
		for _, c := range artCols {
			for i := range t {
				t[i][c] = 0
			}
		}
	}

	// Phase 2: maximize the real objective.
	cost := make([]float64, total)
	for j, v := range free {
		cost[j] = p.Objective[v]
	}
	val := simplexRun(t, basis, cost, total)

	x := fixedX(p, fixed)
	for i, b := range basis {
		if b < n {
			x[free[b]] = t[i][total]
		}
	}
	// Clamp numeric noise.
	for _, v := range free {
		if x[v] < 0 {
			x[v] = 0
		}
		if x[v] > 1 {
			x[v] = 1
		}
	}
	return relaxResult{x: x, value: val + fixedObj}, true
}

func fixedX(p *Problem, fixed []int8) []float64 {
	x := make([]float64, p.NumVars)
	for i, f := range fixed {
		if f == 1 {
			x[i] = 1
		}
	}
	return x
}

// simplexRun maximizes cost·x on the tableau in place and returns the
// optimal value. The tableau must start with a feasible basis. Bland's rule
// guarantees termination.
func simplexRun(t [][]float64, basis []int, cost []float64, total int) float64 {
	m := len(t)
	rhs := total
	// Reduced costs: z_j - c_j computed on demand.
	for iter := 0; iter < 10000; iter++ {
		// Compute simplex multipliers implicitly: reduced cost of column j
		// is c_j - sum_i c_basis[i] * t[i][j].
		enter := -1
		for j := 0; j < total; j++ {
			rc := cost[j]
			for i := 0; i < m; i++ {
				cb := cost[basis[i]]
				if cb != 0 && t[i][j] != 0 {
					rc -= cb * t[i][j]
				}
			}
			if rc > lpEps {
				enter = j // Bland: first improving column
				break
			}
		}
		if enter < 0 {
			break // optimal
		}
		// Ratio test (Bland: smallest index on ties).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][enter] > lpEps {
				ratio := t[i][rhs] / t[i][enter]
				if ratio < bestRatio-lpEps ||
					(ratio < bestRatio+lpEps && (leave < 0 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			// Unbounded direction; with x ≤ 1 rows present this cannot
			// happen for structural columns, but guard anyway.
			break
		}
		pivot(t, basis, leave, enter)
	}
	val := 0.0
	for i := 0; i < m; i++ {
		val += cost[basis[i]] * t[i][rhs]
	}
	return val
}

// pivot makes column enter basic in row leave.
func pivot(t [][]float64, basis []int, leave, enter int) {
	row := t[leave]
	p := row[enter]
	for j := range row {
		row[j] /= p
	}
	for i := range t {
		if i == leave {
			continue
		}
		f := t[i][enter]
		if f == 0 {
			continue
		}
		for j := range t[i] {
			t[i][j] -= f * row[j]
		}
	}
	basis[leave] = enter
}
