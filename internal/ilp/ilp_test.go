package ilp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func TestUnconstrainedMax(t *testing.T) {
	p := &Problem{NumVars: 3, Objective: []float64{1, -2, 3}}
	p.AddConstraint(Constraint{Coeffs: map[int]float64{0: 1, 1: 1, 2: 1}, Sense: LE, RHS: 3})
	s := solveOK(t, p)
	if s.X[0] != 1 || s.X[1] != 0 || s.X[2] != 1 {
		t.Fatalf("x = %v", s.X)
	}
	if math.Abs(s.Objective-4) > 1e-9 {
		t.Fatalf("objective = %v", s.Objective)
	}
}

func TestKnapsack(t *testing.T) {
	// Classic: weights 3,4,5,6; values 4,5,6,7; capacity 10.
	// Optimal: items 1 and 3 (weights 4+6=10, value 12).
	p := &Problem{NumVars: 4, Objective: []float64{4, 5, 6, 7}}
	p.AddConstraint(Constraint{
		Coeffs: map[int]float64{0: 3, 1: 4, 2: 5, 3: 6}, Sense: LE, RHS: 10,
	})
	s := solveOK(t, p)
	if math.Abs(s.Objective-12) > 1e-9 {
		t.Fatalf("knapsack objective = %v, want 12 (x=%v)", s.Objective, s.X)
	}
}

func TestEquality(t *testing.T) {
	// Choose exactly 2 of 4, maximize preference.
	p := &Problem{NumVars: 4, Objective: []float64{5, 1, 4, 2}}
	p.AddConstraint(Constraint{
		Coeffs: map[int]float64{0: 1, 1: 1, 2: 1, 3: 1}, Sense: EQ, RHS: 2,
	})
	s := solveOK(t, p)
	if s.X[0] != 1 || s.X[2] != 1 || s.X[1] != 0 || s.X[3] != 0 {
		t.Fatalf("x = %v", s.X)
	}
}

func TestGESense(t *testing.T) {
	// Must pick at least 3; minimize cost = maximize negative cost.
	p := &Problem{NumVars: 4, Objective: []float64{-3, -1, -4, -2}}
	p.AddConstraint(Constraint{
		Coeffs: map[int]float64{0: 1, 1: 1, 2: 1, 3: 1}, Sense: GE, RHS: 3,
	})
	s := solveOK(t, p)
	count := s.X[0] + s.X[1] + s.X[2] + s.X[3]
	if count != 3 {
		t.Fatalf("picked %d, want 3 (x=%v)", count, s.X)
	}
	if math.Abs(s.Objective-(-6)) > 1e-9 { // cheapest three: 1+2+3
		t.Fatalf("objective = %v, want -6", s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint(Constraint{Coeffs: map[int]float64{0: 1, 1: 1}, Sense: GE, RHS: 3})
	if _, err := Solve(p, Options{}); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestConflictingEqualities(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint(Constraint{Coeffs: map[int]float64{0: 1}, Sense: EQ, RHS: 1})
	p.AddConstraint(Constraint{Coeffs: map[int]float64{0: 1, 1: 1}, Sense: EQ, RHS: 0})
	if _, err := Solve(p, Options{}); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestPaperPullConstraint(t *testing.T) {
	// Two offcodes, two devices (+host). Variables X[n][k] flattened as
	// n*3+k, k=0 is host. Pull: both on the same device for every k.
	idx := func(n, k int) int { return n*3 + k }
	p := &Problem{NumVars: 6, Objective: make([]float64, 6)}
	// Maximized offloading: sum of X over k>=1.
	for n := 0; n < 2; n++ {
		for k := 1; k < 3; k++ {
			p.Objective[idx(n, k)] = 1
		}
	}
	// Unique placement per offcode.
	for n := 0; n < 2; n++ {
		c := Constraint{Coeffs: map[int]float64{}, Sense: EQ, RHS: 1, Label: "place"}
		for k := 0; k < 3; k++ {
			c.Coeffs[idx(n, k)] = 1
		}
		p.AddConstraint(c)
	}
	// Offcode 1 is only compatible with device 2 (and host).
	p.AddConstraint(Constraint{Coeffs: map[int]float64{idx(1, 1): 1}, Sense: EQ, RHS: 0, Label: "compat"})
	// Pull(0,1): X[0][k] == X[1][k] for all k.
	for k := 0; k < 3; k++ {
		p.AddConstraint(Constraint{
			Coeffs: map[int]float64{idx(0, k): 1, idx(1, k): -1}, Sense: EQ, RHS: 0, Label: "pull",
		})
	}
	s := solveOK(t, p)
	// Both must land on device 2.
	if s.X[idx(0, 2)] != 1 || s.X[idx(1, 2)] != 1 {
		t.Fatalf("pull not honored: x = %v", s.X)
	}
	if math.Abs(s.Objective-2) > 1e-9 {
		t.Fatalf("objective = %v", s.Objective)
	}
}

func TestFractionalLPForcesBranching(t *testing.T) {
	// LP relaxation of this has fractional optimum (x=0.5 each); the ILP
	// must branch and find the integer optimum.
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint(Constraint{Coeffs: map[int]float64{0: 2, 1: 2}, Sense: LE, RHS: 3})
	s := solveOK(t, p)
	if s.Objective != 1 {
		t.Fatalf("objective = %v, want 1 (x=%v)", s.Objective, s.X)
	}
	if s.Nodes < 2 {
		t.Fatalf("nodes = %d, expected branching", s.Nodes)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []*Problem{
		{NumVars: 0},
		{NumVars: 2, Objective: []float64{1}},
		func() *Problem {
			p := &Problem{NumVars: 1, Objective: []float64{1}}
			p.AddConstraint(Constraint{Coeffs: map[int]float64{}, Sense: LE, RHS: 1})
			return p
		}(),
		func() *Problem {
			p := &Problem{NumVars: 1, Objective: []float64{1}}
			p.AddConstraint(Constraint{Coeffs: map[int]float64{5: 1}, Sense: LE, RHS: 1})
			return p
		}(),
	}
	for i, p := range cases {
		if _, err := Solve(p, Options{}); err == nil {
			t.Errorf("case %d solved, want validation error", i)
		}
	}
}

func TestNodeBudget(t *testing.T) {
	// A problem that needs more than one node, with budget 1.
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint(Constraint{Coeffs: map[int]float64{0: 2, 1: 2}, Sense: LE, RHS: 3})
	if _, err := Solve(p, Options{MaxNodes: 1}); err == nil {
		t.Fatal("expected node budget error")
	}
}

// bruteForce finds the optimum by enumeration, for cross-checking.
func bruteForce(p *Problem) (best float64, feasible bool) {
	n := p.NumVars
	best = math.Inf(-1)
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for _, c := range p.Constraints {
			sum := 0.0
			for v, coef := range c.Coeffs {
				if mask>>v&1 == 1 {
					sum += coef
				}
			}
			switch c.Sense {
			case LE:
				ok = ok && sum <= c.RHS+1e-9
			case GE:
				ok = ok && sum >= c.RHS-1e-9
			case EQ:
				ok = ok && math.Abs(sum-c.RHS) <= 1e-9
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		feasible = true
		obj := 0.0
		for v := 0; v < n; v++ {
			if mask>>v&1 == 1 {
				obj += p.Objective[v]
			}
		}
		if obj > best {
			best = obj
		}
	}
	return best, feasible
}

// Property: on random small problems the solver matches brute force.
func TestMatchesBruteForceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 2
		p := &Problem{NumVars: n, Objective: make([]float64, n)}
		for i := range p.Objective {
			p.Objective[i] = float64(rng.Intn(21) - 10)
		}
		rows := rng.Intn(5) + 1
		for r := 0; r < rows; r++ {
			c := Constraint{Coeffs: map[int]float64{}, Sense: Sense(rng.Intn(3))}
			for v := 0; v < n; v++ {
				if rng.Intn(2) == 0 {
					c.Coeffs[v] = float64(rng.Intn(9) - 4)
				}
			}
			if len(c.Coeffs) == 0 {
				c.Coeffs[rng.Intn(n)] = 1
			}
			c.RHS = float64(rng.Intn(11) - 3)
			p.AddConstraint(c)
		}
		want, wantFeasible := bruteForce(p)
		got, err := Solve(p, Options{})
		if !wantFeasible {
			return err == ErrInfeasible
		}
		if err != nil {
			return false
		}
		// Verify the claimed optimum and that the assignment is feasible.
		if math.Abs(got.Objective-want) > 1e-6 {
			return false
		}
		for _, c := range p.Constraints {
			sum := 0.0
			for v, coef := range c.Coeffs {
				sum += coef * float64(got.X[v])
			}
			switch c.Sense {
			case LE:
				if sum > c.RHS+1e-6 {
					return false
				}
			case GE:
				if sum < c.RHS-1e-6 {
					return false
				}
			case EQ:
				if math.Abs(sum-c.RHS) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargerAssignmentProblem(t *testing.T) {
	// 10 offcodes × 4 targets (40 vars): place each exactly once,
	// device capacity 3 each, maximize offloading (k>0). Feasible optimum
	// offloads 9 of 10 (3 devices × 3 slots).
	const N, K = 10, 4
	idx := func(n, k int) int { return n*K + k }
	p := &Problem{NumVars: N * K, Objective: make([]float64, N*K)}
	for n := 0; n < N; n++ {
		for k := 1; k < K; k++ {
			p.Objective[idx(n, k)] = 1
		}
		c := Constraint{Coeffs: map[int]float64{}, Sense: EQ, RHS: 1}
		for k := 0; k < K; k++ {
			c.Coeffs[idx(n, k)] = 1
		}
		p.AddConstraint(c)
	}
	for k := 1; k < K; k++ {
		c := Constraint{Coeffs: map[int]float64{}, Sense: LE, RHS: 3}
		for n := 0; n < N; n++ {
			c.Coeffs[idx(n, k)] = 1
		}
		p.AddConstraint(c)
	}
	s := solveOK(t, p)
	if math.Abs(s.Objective-9) > 1e-9 {
		t.Fatalf("objective = %v, want 9", s.Objective)
	}
}
