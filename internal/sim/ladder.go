package sim

// This file implements the engine's pending-event set as a ladder queue
// (a lazily refined calendar queue). The classic binary heap costs
// O(log n) per operation with poor locality once the pending set grows
// to the hundreds of thousands of events a cluster run keeps in flight.
// The ladder queue keeps three tiers instead:
//
//	front    — a small (at, seq) min-heap holding only the nearest
//	           future. All pops come from here.
//	rungs    — a stack of bucket arrays ("rungs"), finest on top.
//	           Each rung spans a window of virtual time split into
//	           ladderBuckets equal buckets; events land in their
//	           bucket with O(1) append, unordered.
//	overflow — an (at, seq) min-heap for the far future, beyond every
//	           rung. It is only touched when a whole era drains.
//
// When the front empties, prime() pulls the next non-empty bucket off
// the top rung: small buckets spill straight into the front heap,
// large ones are refined into a finer rung (width divided by
// ladderBuckets) so no single sort ever sees more than a bucketful.
// When the rungs drain, the overflow heap seeds a fresh rung sized to
// its time span. Total work per event is O(1) amortized.
//
// Determinism invariant — the one property everything in this
// repository leans on — is the (at, seq) total order. The ladder
// preserves it with a single monotone watermark, boundary:
//
//	(1) every event stored in a rung or in overflow has at >= boundary;
//	(2) every event in the front heap has at < boundary, OR the rungs
//	    and overflow are empty (then front is just a plain heap);
//	(3) boundary never decreases.
//
// Inserts below the watermark (events scheduled "now-ish" by a firing
// event) go to the front heap, which orders them by (at, seq) exactly
// as the old binary heap did, so the fire order is bit-for-bit
// identical to the reference heap. TestLadderMatchesReferenceHeap
// cross-checks this on randomized schedule/cancel/tick workloads.

const (
	// ladderBuckets is the number of buckets per rung and the refinement
	// fan-out. 64 keeps rung arrays cache-resident and bounds the rung
	// stack depth at log64(horizon) ≈ 11 for nanosecond clocks.
	ladderBuckets = 64
	// ladderSpill is the largest bucket (or overflow) that is moved to
	// the front heap wholesale instead of being refined further.
	ladderSpill = 16
	// ladderPlainMax is the pending-set size below which the queue stays
	// a single plain binary heap. Small queues (unit tests, idle hosts)
	// never pay for rung bookkeeping; the ladder engages only once the
	// front would grow past this.
	ladderPlainMax = 64
)

// slot is the pooled storage behind a public Event handle. Engine owns
// a free list of slots; gen increments every time a slot is reused so
// stale Event handles become inert instead of corrupting the queue.
type slot struct {
	at  Time
	seq uint64
	fn  func()
	own *Engine

	gen   uint64
	state uint8 // statePending, stateFired, stateCanceled
	where uint8 // whereNone, whereFront, whereBucket, whereOverflow
	pos   int32 // index in front/overflow heap or within its bucket
	bi    int32 // bucket index when where == whereBucket
	r     *rung // owning rung when where == whereBucket
}

const (
	statePending uint8 = iota
	stateFired
	stateCanceled
)

const (
	whereNone uint8 = iota
	whereFront
	whereBucket
	whereOverflow
)

// before reports the (at, seq) total order used everywhere.
func (s *slot) before(o *slot) bool {
	if s.at != o.at {
		return s.at < o.at
	}
	return s.seq < o.seq
}

// rung is one level of the ladder: a window [start, limit()) split into
// ladderBuckets buckets of equal width.
type rung struct {
	buckets [ladderBuckets][]*slot
	start   Time
	width   Time
	cur     int // buckets below cur are drained; scan position
	count   int // live events across all buckets
}

func (r *rung) limit() Time { return r.start + Time(ladderBuckets)*r.width }

// ladder is the three-tier pending set. The zero value is ready to use
// and starts in plain mode: everything lives in the front heap, exactly
// like the old container/heap implementation, until the pending set
// outgrows ladderPlainMax and convert() engages the rungs.
type ladder struct {
	front    []*slot // (at, seq) min-heap; all pops come from here
	rungs    []*rung // stack, finest (narrowest width) last
	overflow []*slot // (at, seq) min-heap for the far future
	omax     Time    // max at currently in overflow (valid when non-empty)
	boundary Time    // rung/overflow events are >= boundary (invariant 1)
	size     int     // live events across all tiers
	freeRung []*rung // recycled rungs, to avoid re-allocating bucket arrays
	ladderOn bool    // false: plain-heap mode (rungs/overflow unused)
	converts uint64  // plain→ladder regime transitions (run diagnostics)
}

func (q *ladder) len() int { return q.size }

// push inserts a pending slot, routing it to the correct tier.
func (q *ladder) push(s *slot) {
	q.size++
	if !q.ladderOn {
		if len(q.front) < ladderPlainMax {
			q.frontPush(s)
			return
		}
		q.convert()
	}
	if s.at < q.boundary {
		q.frontPush(s)
		return
	}
	// Finest rung that covers at wins; scan top of stack downward.
	for i := len(q.rungs) - 1; i >= 0; i-- {
		r := q.rungs[i]
		if s.at < r.limit() {
			q.bucketPush(r, s)
			return
		}
	}
	q.overflowPush(s)
}

// convert switches from plain-heap to ladder mode by moving the whole
// front heap into overflow wholesale. Both tiers are (at, seq)
// min-heaps, so the backing array transfers as-is; only the watermark
// and per-slot tier tags need fixing. After conversion the front is
// empty and boundary equals the overflow minimum, so invariants (1)
// and (2) hold vacuously.
func (q *ladder) convert() {
	q.overflow, q.front = q.front, q.overflow[:0]
	q.omax = 0
	for _, s := range q.overflow {
		s.where = whereOverflow
		if s.at > q.omax {
			q.omax = s.at
		}
	}
	q.boundary = q.overflow[0].at
	q.ladderOn = true
	q.converts++
}

// remove detaches a slot from whichever tier holds it (Cancel path).
func (q *ladder) remove(s *slot) {
	switch s.where {
	case whereFront:
		q.heapRemove(&q.front, int(s.pos))
	case whereOverflow:
		q.heapRemove(&q.overflow, int(s.pos))
	case whereBucket:
		b := s.r.buckets[s.bi]
		last := len(b) - 1
		moved := b[last]
		b[int(s.pos)] = moved
		moved.pos = s.pos
		b[last] = nil
		s.r.buckets[s.bi] = b[:last]
		s.r.count--
	default:
		return
	}
	s.where = whereNone
	s.r = nil
	q.size--
	q.maybeReset()
}

// maybeReset drops back to plain-heap mode once the queue drains, so
// long-lived engines with bursty load re-enter the cheap path. Resetting
// the watermark with zero live events cannot reorder anything.
func (q *ladder) maybeReset() {
	if q.size == 0 && q.ladderOn {
		q.ladderOn = false
		q.boundary = 0
	}
}

// peek returns the globally earliest pending slot without removing it,
// or nil when empty. It may restructure tiers (amortized O(1)).
func (q *ladder) peek() *slot {
	if len(q.front) == 0 {
		q.prime()
	}
	if len(q.front) == 0 {
		return nil
	}
	return q.front[0]
}

// pop removes and returns the earliest pending slot, or nil when empty.
func (q *ladder) pop() *slot {
	s := q.peek()
	if s == nil {
		return nil
	}
	q.heapRemove(&q.front, 0)
	s.where = whereNone
	q.size--
	q.maybeReset()
	return s
}

// prime refills the front heap from the rungs (or, once those drain,
// from the overflow heap), advancing the boundary watermark.
func (q *ladder) prime() {
	for len(q.front) == 0 && q.size > 0 {
		if n := len(q.rungs); n > 0 {
			r := q.rungs[n-1]
			if r.count == 0 {
				q.rungs[n-1] = nil
				q.rungs = q.rungs[:n-1]
				q.recycleRung(r)
				continue
			}
			for r.cur < ladderBuckets && len(r.buckets[r.cur]) == 0 {
				r.cur++
			}
			b := r.buckets[r.cur]
			bs := r.start + Time(r.cur)*r.width
			if len(b) <= ladderSpill || r.width <= 1 {
				// Small bucket (or cannot refine further): spill it
				// into the front heap and advance the watermark past
				// the bucket so later same-era inserts join the heap.
				for _, s := range b {
					q.frontPush(s)
				}
				q.clearBucket(r, r.cur)
				r.cur++
				q.boundary = bs + r.width
			} else {
				// Large bucket: refine into a finer rung instead of
				// sorting it all at once.
				nw := (r.width-1)/Time(ladderBuckets) + 1 // ceil
				nr := q.newRung(bs, nw)
				for _, s := range b {
					q.bucketPush(nr, s)
				}
				q.clearBucket(r, r.cur)
				r.cur++
				q.rungs = append(q.rungs, nr)
				q.boundary = bs
			}
		} else {
			if len(q.overflow) <= ladderSpill {
				for _, s := range q.overflow {
					s.where = whereNone
					q.frontPush(s)
				}
				q.overflow = q.overflow[:0]
				q.boundary = q.omax + 1
			} else {
				// Seed a rung spanning the whole overflow era. Width
				// is chosen so the latest event still lands in the
				// last bucket: (omax-t0)/w < ladderBuckets.
				t0 := q.overflow[0].at
				w := (q.omax-t0)/Time(ladderBuckets) + 1
				nr := q.newRung(t0, w)
				for _, s := range q.overflow {
					s.where = whereNone
					q.bucketPush(nr, s)
				}
				q.overflow = q.overflow[:0]
				q.rungs = append(q.rungs, nr)
				q.boundary = t0
			}
		}
	}
}

func (q *ladder) clearBucket(r *rung, i int) {
	b := r.buckets[i]
	r.count -= len(b)
	for j := range b {
		b[j] = nil
	}
	r.buckets[i] = b[:0]
}

func (q *ladder) newRung(start, width Time) *rung {
	var r *rung
	if n := len(q.freeRung); n > 0 {
		r = q.freeRung[n-1]
		q.freeRung[n-1] = nil
		q.freeRung = q.freeRung[:n-1]
	} else {
		r = &rung{}
	}
	r.start, r.width, r.cur, r.count = start, width, 0, 0
	return r
}

func (q *ladder) recycleRung(r *rung) {
	if len(q.freeRung) < 16 {
		q.freeRung = append(q.freeRung, r)
	}
}

func (q *ladder) bucketPush(r *rung, s *slot) {
	// at >= boundary >= r.start + cur*width for every live rung, so the
	// computed bucket is never behind the scan position.
	bi := int32((s.at - r.start) / r.width)
	s.where, s.r, s.bi = whereBucket, r, bi
	s.pos = int32(len(r.buckets[bi]))
	r.buckets[bi] = append(r.buckets[bi], s)
	r.count++
}

func (q *ladder) frontPush(s *slot) {
	s.where = whereFront
	s.pos = int32(len(q.front))
	q.front = append(q.front, s)
	q.siftUp(q.front, len(q.front)-1)
}

func (q *ladder) overflowPush(s *slot) {
	if len(q.overflow) == 0 || s.at > q.omax {
		q.omax = s.at
	}
	s.where = whereOverflow
	s.pos = int32(len(q.overflow))
	q.overflow = append(q.overflow, s)
	q.siftUp(q.overflow, len(q.overflow)-1)
}

// heapRemove removes index i from an (at, seq) min-heap, keeping pos
// fields in sync. Works for both the front and overflow heaps.
func (q *ladder) heapRemove(h *[]*slot, i int) {
	a := *h
	last := len(a) - 1
	if i != last {
		a[i] = a[last]
		a[i].pos = int32(i)
	}
	a[last] = nil
	*h = a[:last]
	if i != last {
		if !q.siftDown(*h, i) {
			q.siftUp(*h, i)
		}
	}
}

func (q *ladder) siftUp(a []*slot, i int) {
	s := a[i]
	for i > 0 {
		p := (i - 1) / 2
		if !s.before(a[p]) {
			break
		}
		a[i] = a[p]
		a[i].pos = int32(i)
		i = p
	}
	a[i] = s
	s.pos = int32(i)
}

// siftDown returns true when the element moved.
func (q *ladder) siftDown(a []*slot, i int) bool {
	s := a[i]
	n := len(a)
	i0 := i
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && a[r].before(a[c]) {
			c = r
		}
		if !a[c].before(s) {
			break
		}
		a[i] = a[c]
		a[i].pos = int32(i)
		i = c
	}
	a[i] = s
	s.pos = int32(i)
	return i != i0
}
