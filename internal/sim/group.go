package sim

import (
	"fmt"
	"sort"
	"sync"
)

// Group coordinates several engines whose only interaction is message
// passing with a minimum latency (the lookahead). It implements
// classic conservative-window parallel discrete-event simulation
// (Chandy–Misra–Bryant style, with a global window instead of per-link
// null messages):
//
//	window horizon h = (earliest pending event across all engines) + lookahead
//
// Within [·, h) every engine can run independently: any message one
// engine sends to another is delayed by at least the lookahead, so its
// delivery time is >= h and it cannot affect the receiver inside the
// current window. Each engine therefore runs to h in its own goroutine,
// the group barriers, buffered cross-engine messages are injected in a
// deterministic order, and the next window begins.
//
// Determinism: messages buffered during a window are sorted by
// (deliverAt, source engine index, per-source send sequence) before
// injection, so receiver-side event sequence numbers — and thus the
// fire order at equal timestamps — are identical whether the window
// bodies ran serially or in parallel. Run(until, 1) ≡ Run(until, N)
// bit-for-bit; the race-enabled tests assert exactly that.
type Group struct {
	engines   []*Engine
	idx       map[*Engine]int
	lookahead Time

	windowed bool
	out      [][]xmsg // per-source buffers, only touched by that source's goroutine
	nsent    []uint64 // per-source send sequence, for deterministic injection order
	inj      []xmsg   // scratch for the barrier-time merge
}

// xmsg is one buffered cross-engine message.
type xmsg struct {
	dst *Engine
	at  Time
	fn  func()
	src int
	seq uint64
}

// NewGroup builds a group over engines with the given lookahead — the
// minimum latency of any cross-engine message. A non-positive lookahead
// would make the window empty, so it is rejected.
func NewGroup(engines []*Engine, lookahead Time) (*Group, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("sim: group needs at least one engine")
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: group lookahead must be positive, got %v", lookahead)
	}
	g := &Group{
		engines:   engines,
		idx:       make(map[*Engine]int, len(engines)),
		lookahead: lookahead,
		out:       make([][]xmsg, len(engines)),
		nsent:     make([]uint64, len(engines)),
	}
	for i, e := range engines {
		if _, dup := g.idx[e]; dup {
			return nil, fmt.Errorf("sim: engine %d appears twice in group", i)
		}
		g.idx[e] = i
	}
	return g, nil
}

// Engines returns the member engines in group order.
func (g *Group) Engines() []*Engine { return g.engines }

// Lookahead reports the group's window lookahead.
func (g *Group) Lookahead() Time { return g.lookahead }

// Send schedules fn at absolute time at on dst, on behalf of src. The
// sender must guarantee at >= src.Now() + lookahead (true by
// construction when at includes a cross-engine link latency). Outside a
// windowed Run this degenerates to dst.At. Inside one it buffers the
// message in a per-source queue — each source goroutine touches only
// its own buffer, so windows need no locks — for injection at the next
// barrier.
func (g *Group) Send(src, dst *Engine, at Time, fn func()) {
	if !g.windowed {
		dst.At(at, fn)
		return
	}
	i, ok := g.idx[src]
	if !ok {
		panic("sim: group send from engine outside the group")
	}
	g.out[i] = append(g.out[i], xmsg{dst: dst, at: at, fn: fn, src: i, seq: g.nsent[i]})
	g.nsent[i]++
}

// Settle executes events across all engines in global (time, engine
// index) order until every queue drains. It is single-threaded and
// tolerates direct cross-engine scheduling (dst.At from another
// engine's callback), which makes it the right tool for control-plane
// phases — deployment commits, migrations — where call graphs span
// hosts arbitrarily and lookahead does not apply.
func (g *Group) Settle() {
	for {
		best := -1
		var bt Time
		for i, e := range g.engines {
			s := e.q.peek()
			if s == nil {
				continue
			}
			if best < 0 || s.at < bt {
				best, bt = i, s.at
			}
		}
		if best < 0 {
			return
		}
		g.engines[best].Step()
	}
}

// Run advances every engine to until using conservative windows,
// running window bodies on workers goroutines (workers <= 1 runs them
// serially, same results bit-for-bit). Events at exactly until fire;
// all clocks end at until.
func (g *Group) Run(until Time, workers int) {
	g.windowed = true
	defer func() { g.windowed = false }()
	for {
		g.flush()
		next, ok := g.minNext()
		if !ok || next > until {
			for _, e := range g.engines {
				if e.now < until {
					e.now = until
				}
			}
			return
		}
		h := next + g.lookahead
		inclusive := false
		if h >= until {
			h = until
			inclusive = true
		}
		if workers > 1 {
			var wg sync.WaitGroup
			for _, e := range g.engines {
				wg.Add(1)
				go func(e *Engine) {
					defer wg.Done()
					e.runWindow(h, inclusive)
				}(e)
			}
			wg.Wait()
		} else {
			for _, e := range g.engines {
				e.runWindow(h, inclusive)
			}
		}
	}
}

// flush injects every buffered cross-engine message in deterministic
// (at, src, seq) order. Receiver At calls then assign sequence numbers
// identically regardless of how the window bodies were scheduled.
func (g *Group) flush() {
	g.inj = g.inj[:0]
	for i := range g.out {
		g.inj = append(g.inj, g.out[i]...)
		g.out[i] = g.out[i][:0]
	}
	if len(g.inj) == 0 {
		return
	}
	sort.Slice(g.inj, func(a, b int) bool {
		x, y := &g.inj[a], &g.inj[b]
		if x.at != y.at {
			return x.at < y.at
		}
		if x.src != y.src {
			return x.src < y.src
		}
		return x.seq < y.seq
	})
	for i := range g.inj {
		m := &g.inj[i]
		m.dst.At(m.at, m.fn)
		m.fn = nil
	}
}

// minNext reports the earliest pending event time across the group.
func (g *Group) minNext() (Time, bool) {
	var t Time
	found := false
	for _, e := range g.engines {
		s := e.q.peek()
		if s == nil {
			continue
		}
		if !found || s.at < t {
			t, found = s.at, true
		}
	}
	return t, found
}
