// Package sim provides a deterministic discrete-event simulation engine.
//
// Every hardware and operating-system model in this repository (host CPUs,
// buses, caches, devices, networks) advances on the virtual clock owned by an
// Engine. Events scheduled at the same instant fire in the order they were
// scheduled, which makes runs bit-for-bit reproducible for a fixed seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since the start of the run.
type Time int64

// Common durations expressed in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts a floating-point number of seconds to a Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Float64Seconds reports t as a floating-point number of seconds.
func (t Time) Float64Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", t.Float64Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Event is a scheduled callback. The zero Event is inert.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
	owner    *Engine
}

// At reports the virtual time the event will fire.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing and removes it from the pending
// set immediately, so heavily canceled workloads (timeouts, retries) do
// not accumulate dead events until their fire time. Canceling an
// already-fired or already-canceled event is a no-op.
func (e *Event) Cancel() {
	if e.canceled {
		return
	}
	e.canceled = true
	if e.owner != nil && e.index >= 0 {
		heap.Remove(&e.owner.queue, e.index)
	}
	e.fn = nil // release the closure eagerly
}

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e.canceled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine owns the virtual clock and the pending event set.
// It is not safe for concurrent use; models run single-threaded by design so
// that execution order is deterministic.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	seed    int64
	stopped bool

	// Fired counts events executed so far; useful for run diagnostics.
	Fired uint64
}

// NewEngine returns an engine whose random streams derive from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed reports the seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// NewRand derives an independent deterministic random stream. Models that
// need private randomness should take their own stream so that adding a model
// does not perturb the draws seen by others.
func (e *Engine) NewRand(salt int64) *rand.Rand {
	const mix = int64(-0x61c8864680b583eb) // golden-ratio multiplier
	return rand.New(rand.NewSource(e.seed ^ (salt * mix)))
}

// Schedule arranges for fn to run after delay. A negative delay is treated
// as zero. It returns the event so callers may cancel it.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At arranges for fn to run at absolute virtual time t. Times in the past
// are clamped to now.
func (e *Engine) At(t Time, fn func()) *Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn, owner: e}
	heap.Push(&e.queue, ev)
	return ev
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event, advancing the clock.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.Fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains, Stop is called, or the clock
// would pass until (events at exactly until still fire). It returns the
// virtual time at exit.
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for !e.stopped {
		// Peek: do not fire events beyond the horizon.
		if e.queue.Len() == 0 {
			break
		}
		next := e.queue[0]
		if next.at > until {
			e.now = until
			break
		}
		e.Step()
	}
	return e.now
}

// RunAll executes events until the queue drains or Stop is called.
func (e *Engine) RunAll() Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// Pending reports the number of live events waiting. Canceled events are
// removed from the pending set eagerly and never counted.
func (e *Engine) Pending() int { return e.queue.Len() }

// Ticker invokes fn every period until the returned stop function is called.
// The first invocation happens one period from now plus phase.
type Ticker struct {
	stop bool
}

// Stop prevents further ticks.
func (t *Ticker) Stop() { t.stop = true }

// Stopped reports whether Stop was called.
func (t *Ticker) Stopped() bool { return t.stop }

// Tick schedules fn to run every period, starting after phase+period.
func (e *Engine) Tick(period, phase Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: non-positive tick period")
	}
	t := &Ticker{}
	var arm func()
	arm = func() {
		e.Schedule(period, func() {
			if t.stop {
				return
			}
			fn()
			if !t.stop {
				arm()
			}
		})
	}
	e.Schedule(phase, arm)
	return t
}
