// Package sim provides a deterministic discrete-event simulation engine.
//
// Every hardware and operating-system model in this repository (host CPUs,
// buses, caches, devices, networks) advances on the virtual clock owned by an
// Engine. Events scheduled at the same instant fire in the order they were
// scheduled, which makes runs bit-for-bit reproducible for a fixed seed.
//
// The pending set is a ladder queue (ladder.go) and event storage is
// pooled: Schedule/At hand out value handles into engine-owned slots
// that are recycled after the event fires or is canceled, so the
// steady-state hot path does not allocate. Generation counters make
// stale handles inert — holding an Event past its fire time is safe.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since the start of the run.
type Time int64

// Common durations expressed in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts a floating-point number of seconds to a Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Float64Seconds reports t as a floating-point number of seconds.
func (t Time) Float64Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", t.Float64Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Event is a handle to a scheduled callback. It is a small value, not a
// pointer: copies are cheap and compare equal. The zero Event is inert.
//
// The storage behind a handle is pooled. Once the event fires or is
// canceled, the engine may recycle its slot for a future Schedule; a
// generation counter in the handle detects this, so Cancel, Canceled
// and Active on a stale handle are safe no-ops rather than corruption.
// The one caveat of recycling: after the slot is reused, Canceled
// reports false even if Cancel was the reason the event concluded —
// query it near the cancellation, not eras later.
type Event struct {
	s   *slot
	gen uint64
	at  Time
}

// At reports the virtual time the event fires (or fired).
func (e Event) At() Time { return e.at }

// live reports whether the handle still refers to its original
// scheduling (the slot has not been recycled).
func (e Event) live() bool { return e.s != nil && e.s.gen == e.gen }

// Active reports whether the event is still pending: not yet fired,
// not canceled.
func (e Event) Active() bool { return e.live() && e.s.state == statePending }

// Cancel prevents the event from firing and removes it from the pending
// set immediately, so heavily canceled workloads (timeouts, retries) do
// not accumulate dead events until their fire time. Canceling an
// already-fired or already-canceled event — or the zero Event — is a
// no-op.
func (e Event) Cancel() {
	if !e.live() || e.s.state != statePending {
		return
	}
	s := e.s
	own := s.own
	own.q.remove(s)
	s.state = stateCanceled
	own.release(s)
}

// Canceled reports whether Cancel took effect on this scheduling.
func (e Event) Canceled() bool { return e.live() && e.s.state == stateCanceled }

// EngineProbe observes the engine's two hot-path transitions. A probe is
// called synchronously on the engine's own goroutine, so implementations
// must not block and must not touch the engine re-entrantly. The engine
// guards every call with a nil check; with no probe attached the hot path
// pays one predictable branch and nothing else.
type EngineProbe interface {
	// EventScheduled fires when At admits an event for virtual time at.
	EventScheduled(at Time)
	// EventFired fires after the clock advances to at, before the
	// event's callback runs.
	EventFired(at Time)
}

// Engine owns the virtual clock and the pending event set.
// It is not safe for concurrent use; models run single-threaded by design so
// that execution order is deterministic. (A Group coordinates several
// engines, each still single-threaded within its goroutine.)
type Engine struct {
	now     Time
	seq     uint64
	q       ladder
	free    []*slot
	rng     *rand.Rand
	seed    int64
	stopped bool
	minted  uint64

	probe EngineProbe
	obsv  any

	// Fired counts events executed so far; useful for run diagnostics.
	Fired uint64
}

// NewEngine returns an engine whose random streams derive from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed reports the seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// NewRand derives an independent deterministic random stream. Models that
// need private randomness should take their own stream so that adding a model
// does not perturb the draws seen by others.
func (e *Engine) NewRand(salt int64) *rand.Rand {
	const mix = int64(-0x61c8864680b583eb) // golden-ratio multiplier
	return rand.New(rand.NewSource(e.seed ^ (salt * mix)))
}

// SetProbe attaches (or, with nil, detaches) a hot-path observer.
func (e *Engine) SetProbe(p EngineProbe) { e.probe = p }

// SetObs attaches an opaque observability handle to the engine so
// components built over it can find their trace shard without the sim
// package importing the obs package (see obs.FromEngine).
func (e *Engine) SetObs(v any) { e.obsv = v }

// Obs returns the handle set by SetObs, or nil.
func (e *Engine) Obs() any { return e.obsv }

// Diag is a point-in-time snapshot of engine run diagnostics: progress
// counters, queue regime, and event-pool occupancy. It is plain data —
// capture it into an obs.Registry rather than poking Engine fields.
type Diag struct {
	// Now is the virtual clock; Fired and Scheduled count events
	// executed and admitted so far.
	Now       Time
	Fired     uint64
	Scheduled uint64
	// Pending is the live pending-set size. LadderOn reports whether the
	// queue is in ladder (bucketed) mode, Rungs how deep the rung stack
	// is, and LadderConverts how many plain-heap→ladder transitions the
	// run has made.
	Pending        int
	LadderOn       bool
	Rungs          int
	LadderConverts uint64
	// SlotsMinted counts event slots ever allocated; SlotsFree is the
	// current free-list depth. Minted minus free is pool occupancy.
	SlotsMinted uint64
	SlotsFree   int
}

// Diag snapshots the engine's run diagnostics.
func (e *Engine) Diag() Diag {
	return Diag{
		Now:            e.now,
		Fired:          e.Fired,
		Scheduled:      e.seq,
		Pending:        e.q.len(),
		LadderOn:       e.q.ladderOn,
		Rungs:          len(e.q.rungs),
		LadderConverts: e.q.converts,
		SlotsMinted:    e.minted,
		SlotsFree:      len(e.free),
	}
}

// alloc takes a slot off the free list (or mints one), bumping its
// generation so handles to the previous occupant go stale.
func (e *Engine) alloc() *slot {
	n := len(e.free)
	if n == 0 {
		e.minted++
		s := &slot{own: e}
		s.gen = 1
		return s
	}
	s := e.free[n-1]
	e.free[n-1] = nil
	e.free = e.free[:n-1]
	s.gen++
	return s
}

// release returns a concluded slot to the free list. The closure is
// dropped immediately — a fired event must not pin its captured state
// until GC — but gen and state survive until the slot is reused, so the
// holder's Canceled/Active queries stay meaningful in the interim.
func (e *Engine) release(s *slot) {
	s.fn = nil
	s.where = whereNone
	s.r = nil
	e.free = append(e.free, s)
}

// Schedule arranges for fn to run after delay. A negative delay is treated
// as zero. It returns the event so callers may cancel it.
func (e *Engine) Schedule(delay Time, fn func()) Event {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At arranges for fn to run at absolute virtual time t. Times in the past
// are clamped to now.
func (e *Engine) At(t Time, fn func()) Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	s := e.alloc()
	s.at, s.seq, s.fn, s.state = t, e.seq, fn, statePending
	e.q.push(s)
	if e.probe != nil {
		e.probe.EventScheduled(t)
	}
	return Event{s: s, gen: s.gen, at: t}
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event, advancing the clock.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	s := e.q.pop()
	if s == nil {
		return false
	}
	e.now = s.at
	e.Fired++
	fn := s.fn
	s.state = stateFired
	// Recycle before firing so the callback can schedule into the slot
	// it just vacated — the common chain pattern then ping-pongs between
	// two slots with zero allocation.
	e.release(s)
	if e.probe != nil {
		e.probe.EventFired(e.now)
	}
	fn()
	return true
}

// Run executes events until the queue drains, Stop is called, or the clock
// would pass until (events at exactly until still fire). It returns the
// virtual time at exit.
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for !e.stopped {
		// Peek: do not fire events beyond the horizon.
		next := e.q.peek()
		if next == nil {
			break
		}
		if next.at > until {
			e.now = until
			break
		}
		e.Step()
	}
	return e.now
}

// RunAll executes events until the queue drains or Stop is called.
func (e *Engine) RunAll() Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// runWindow executes events with at < limit (at <= limit when inclusive)
// and then advances the clock to limit. It is the per-engine leg of a
// Group window: the exclusive bound keeps events at exactly the horizon
// ordered after any cross-engine traffic injected at the barrier.
func (e *Engine) runWindow(limit Time, inclusive bool) {
	for {
		next := e.q.peek()
		if next == nil || next.at > limit || (!inclusive && next.at == limit) {
			break
		}
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
}

// Pending reports the number of live events waiting. Canceled events are
// removed from the pending set eagerly and never counted.
func (e *Engine) Pending() int { return e.q.len() }

// Ticker invokes fn every period until the returned stop function is called.
// The first invocation happens one period from now plus phase.
type Ticker struct {
	stop bool
}

// Stop prevents further ticks.
func (t *Ticker) Stop() { t.stop = true }

// Stopped reports whether Stop was called.
func (t *Ticker) Stopped() bool { return t.stop }

// Tick schedules fn to run every period, starting after phase+period.
func (e *Engine) Tick(period, phase Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: non-positive tick period")
	}
	t := &Ticker{}
	var arm func()
	arm = func() {
		e.Schedule(period, func() {
			if t.stop {
				return
			}
			fn()
			if !t.stop {
				arm()
			}
		})
	}
	e.Schedule(phase, arm)
	return t
}
