package sim

import (
	"fmt"
	"testing"
)

// buildGroupWorkload wires nEng engines into a ring: each engine runs a
// local event chain and periodically sends a message one hop around the
// ring with latency >= the group lookahead. Returns the group and a
// per-engine log that records (time, tag) for every action.
func buildGroupWorkload(t *testing.T, nEng int, lookahead Time) (*Group, []*[]string) {
	t.Helper()
	engines := make([]*Engine, nEng)
	for i := range engines {
		engines[i] = NewEngine(int64(100 + i))
	}
	g, err := NewGroup(engines, lookahead)
	if err != nil {
		t.Fatal(err)
	}
	logs := make([]*[]string, nEng)
	for i := range logs {
		logs[i] = &[]string{}
	}
	for i, e := range engines {
		i, e := i, e
		rng := e.NewRand(1)
		var local func()
		hops := 0
		local = func() {
			*logs[i] = append(*logs[i], fmt.Sprintf("%d local@%v", i, e.Now()))
			hops++
			if hops%3 == 0 {
				// Cross-engine hop: latency strictly >= lookahead.
				dst := engines[(i+1)%nEng]
				lat := lookahead + Time(rng.Intn(int(lookahead)))
				at := e.Now() + lat
				g.Send(e, dst, at, func() {
					*logs[(i+1)%nEng] = append(*logs[(i+1)%nEng],
						fmt.Sprintf("%d recv-from-%d@%v", (i+1)%nEng, i, dst.Now()))
				})
			}
			if hops < 200 {
				e.Schedule(Time(rng.Intn(2000)+1), local)
			}
		}
		e.Schedule(Time(rng.Intn(100)+1), local)
	}
	return g, logs
}

// TestGroupSerialParallelIdentical is the conservative-window
// determinism assertion: the same workload run with one worker and with
// many workers must produce bit-identical per-engine logs and clocks.
// Under -race this also exercises the window goroutines for data races.
func TestGroupSerialParallelIdentical(t *testing.T) {
	const until = Time(500_000)
	run := func(workers int) ([][]string, []Time) {
		g, logs := buildGroupWorkload(t, 4, 20*Microsecond)
		g.Run(until, workers)
		out := make([][]string, len(logs))
		clocks := make([]Time, len(g.Engines()))
		for i, l := range logs {
			out[i] = *l
		}
		for i, e := range g.Engines() {
			clocks[i] = e.Now()
		}
		return out, clocks
	}
	serialLogs, serialClocks := run(1)
	parallelLogs, parallelClocks := run(8)
	for i := range serialLogs {
		if len(serialLogs[i]) == 0 {
			t.Fatalf("engine %d did no work", i)
		}
		if len(serialLogs[i]) != len(parallelLogs[i]) {
			t.Fatalf("engine %d: serial %d entries, parallel %d",
				i, len(serialLogs[i]), len(parallelLogs[i]))
		}
		for j := range serialLogs[i] {
			if serialLogs[i][j] != parallelLogs[i][j] {
				t.Fatalf("engine %d entry %d: serial %q, parallel %q",
					i, j, serialLogs[i][j], parallelLogs[i][j])
			}
		}
	}
	for i := range serialClocks {
		if serialClocks[i] != until || parallelClocks[i] != until {
			t.Fatalf("engine %d clocks: serial %v, parallel %v, want %v",
				i, serialClocks[i], parallelClocks[i], until)
		}
	}
}

// TestGroupSettle drains direct cross-engine call chains in global
// (time, engine index) order.
func TestGroupSettle(t *testing.T) {
	a, b := NewEngine(1), NewEngine(2)
	g, err := NewGroup([]*Engine{a, b}, Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	a.Schedule(10, func() {
		order = append(order, "a10")
		// Direct cross-engine scheduling: allowed during Settle.
		b.At(15, func() { order = append(order, "b15") })
	})
	b.Schedule(12, func() { order = append(order, "b12") })
	a.Schedule(15, func() { order = append(order, "a15") })
	g.Settle()
	want := []string{"a10", "b12", "a15", "b15"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if a.Pending() != 0 || b.Pending() != 0 {
		t.Fatal("Settle left events pending")
	}
}

// TestGroupSettleTie: same-timestamp events across engines settle in
// engine-index order.
func TestGroupSettleTie(t *testing.T) {
	a, b := NewEngine(1), NewEngine(2)
	g, _ := NewGroup([]*Engine{a, b}, Microsecond)
	var order []string
	b.Schedule(10, func() { order = append(order, "b") })
	a.Schedule(10, func() { order = append(order, "a") })
	g.Settle()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("tie order = %v, want [a b]", order)
	}
}

// TestGroupValidation covers constructor error cases.
func TestGroupValidation(t *testing.T) {
	if _, err := NewGroup(nil, Microsecond); err == nil {
		t.Fatal("empty group accepted")
	}
	e := NewEngine(1)
	if _, err := NewGroup([]*Engine{e}, 0); err == nil {
		t.Fatal("zero lookahead accepted")
	}
	if _, err := NewGroup([]*Engine{e, e}, Microsecond); err == nil {
		t.Fatal("duplicate engine accepted")
	}
}

// TestGroupRunFiresAtHorizon: events at exactly until fire, and clocks
// land exactly on until even for idle engines.
func TestGroupRunFiresAtHorizon(t *testing.T) {
	a, b := NewEngine(1), NewEngine(2)
	g, _ := NewGroup([]*Engine{a, b}, Microsecond)
	fired := false
	a.At(1000, func() { fired = true })
	g.Run(1000, 1)
	if !fired {
		t.Fatal("event at the horizon did not fire")
	}
	if a.Now() != 1000 || b.Now() != 1000 {
		t.Fatalf("clocks = %v, %v, want 1000", a.Now(), b.Now())
	}
}
