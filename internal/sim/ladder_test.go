package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEngine is the original binary-heap engine, kept verbatim as the
// ordering oracle: the ladder queue must produce bit-identical fire
// order on any workload.
type refEvent struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *refQueue) Push(x any) {
	e := x.(*refEvent)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

type refEngine struct {
	now   Time
	seq   uint64
	queue refQueue
}

func (e *refEngine) at(t Time, fn func()) *refEvent {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &refEvent{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

func (e *refEngine) cancel(ev *refEvent) {
	if ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index >= 0 {
		heap.Remove(&e.queue, ev.index)
	}
	ev.fn = nil
}

func (e *refEngine) step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*refEvent)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

func (e *refEngine) run(until Time) {
	for {
		if e.queue.Len() == 0 {
			break
		}
		if e.queue[0].at > until {
			e.now = until
			break
		}
		e.step()
	}
}

// fireRec is one observed firing: which logical event, at what time.
type fireRec struct {
	id int
	at Time
}

// TestLadderMatchesReferenceHeap drives the ladder-queue engine and the
// reference heap engine through the same randomized schedule / cancel /
// step / run-to-horizon workload — including events that schedule
// children and same-instant bursts — and asserts the fire sequences are
// identical, id for id, timestamp for timestamp.
func TestLadderMatchesReferenceHeap(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234, 987654321} {
		seed := seed
		rng := rand.New(rand.NewSource(seed))

		eng := NewEngine(seed)
		ref := &refEngine{}
		var gotLog, wantLog []fireRec

		// Child plan decided up front per id so both engines' callbacks
		// take identical actions without sharing state.
		type childPlan struct {
			delay Time
			id    int
		}
		plans := map[int]childPlan{}
		nextID := 0

		var live []Event
		var refLive []*refEvent

		var schedBoth func(d Time)
		schedBoth = func(d Time) {
			id := nextID
			nextID++
			if rng.Intn(4) == 0 {
				plans[id] = childPlan{delay: Time(rng.Intn(500)), id: -1}
			}
			var mk func(log *[]fireRec, child func(Time)) func()
			mk = func(log *[]fireRec, child func(Time)) func() {
				return func() {
					var at Time
					if log == &gotLog {
						at = eng.Now()
					} else {
						at = ref.now
					}
					*log = append(*log, fireRec{id: id, at: at})
					if p, ok := plans[id]; ok {
						child(p.delay)
					}
				}
			}
			// Same-instant bursts matter: draw delays from a small
			// domain part of the time, a huge one otherwise.
			at := eng.Now() + d
			ev := eng.At(at, mk(&gotLog, func(cd Time) {
				cid := nextID // children get ids too, via recursive sched
				_ = cid
				eng.Schedule(cd, func() { gotLog = append(gotLog, fireRec{id: -1, at: eng.Now()}) })
			}))
			rev := ref.at(ref.now+d, mk(&wantLog, func(cd Time) {
				ref.at(ref.now+cd, func() { wantLog = append(wantLog, fireRec{id: -1, at: ref.now}) })
			}))
			live = append(live, ev)
			refLive = append(refLive, rev)
		}

		for op := 0; op < 4000; op++ {
			switch r := rng.Intn(10); {
			case r < 5:
				var d Time
				switch rng.Intn(3) {
				case 0:
					d = Time(rng.Intn(32)) // near / same-instant bursts
				case 1:
					d = Time(rng.Intn(10_000))
				default:
					d = Time(rng.Intn(50_000_000)) // far future → overflow tier
				}
				schedBoth(d)
			case r < 7:
				if len(live) > 0 {
					i := rng.Intn(len(live))
					live[i].Cancel()
					ref.cancel(refLive[i])
				}
			case r < 9:
				k := rng.Intn(16)
				for j := 0; j < k; j++ {
					a := eng.Step()
					b := ref.step()
					if a != b {
						t.Fatalf("seed %d: step liveness diverged (ladder %v, ref %v)", seed, a, b)
					}
				}
			default:
				horizon := eng.Now() + Time(rng.Intn(100_000))
				eng.Run(horizon)
				ref.run(horizon)
			}
		}
		for eng.Step() {
		}
		for ref.step() {
		}

		if len(gotLog) != len(wantLog) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(gotLog), len(wantLog))
		}
		for i := range gotLog {
			if gotLog[i] != wantLog[i] {
				t.Fatalf("seed %d: fire %d diverged: ladder %+v, reference %+v", seed, i, gotLog[i], wantLog[i])
			}
		}
		if eng.Pending() != 0 {
			t.Fatalf("seed %d: %d events still pending after drain", seed, eng.Pending())
		}
	}
}

// TestLadderDeepHorizon exercises multi-level rung refinement: one
// dense cluster of events at a huge offset forces overflow → rung →
// sub-rung cascades.
func TestLadderDeepHorizon(t *testing.T) {
	eng := NewEngine(3)
	const base = Time(1_000_000_000_000) // 1000s
	var fired []Time
	rng := rand.New(rand.NewSource(9))
	want := make([]Time, 0, 2000)
	for i := 0; i < 2000; i++ {
		at := base + Time(rng.Intn(1000)) // dense: many duplicates
		want = append(want, at)
		eng.At(at, func() { fired = append(fired, eng.Now()) })
	}
	// Plus stragglers far beyond.
	for i := 0; i < 100; i++ {
		at := 2*base + Time(i)
		want = append(want, at)
		eng.At(at, func() { fired = append(fired, eng.Now()) })
	}
	eng.RunAll()
	if len(fired) != len(want) {
		t.Fatalf("fired %d, want %d", len(fired), len(want))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("out of order at %d: %v after %v", i, fired[i], fired[i-1])
		}
	}
}

// TestEventHandleSemantics pins down the pooled-handle contract: stale
// handles are inert, Active tracks the pending state, and the zero
// Event does nothing.
func TestEventHandleSemantics(t *testing.T) {
	eng := NewEngine(5)

	var zero Event
	zero.Cancel() // must not panic
	if zero.Active() || zero.Canceled() {
		t.Fatal("zero Event is not inert")
	}

	fired := 0
	ev := eng.Schedule(10, func() { fired++ })
	if !ev.Active() {
		t.Fatal("scheduled event not Active")
	}
	eng.RunAll()
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	if ev.Active() {
		t.Fatal("fired event still Active")
	}
	ev.Cancel() // cancel after fire: no-op
	if ev.Canceled() {
		t.Fatal("Cancel after fire reported Canceled")
	}

	// Recycling: the slot behind ev is reused by the next schedule; the
	// stale handle must not be able to cancel the new occupant.
	ev2 := eng.Schedule(10, func() { fired++ })
	ev.Cancel()
	if !ev2.Active() {
		t.Fatal("stale handle canceled a recycled slot's new event")
	}
	eng.RunAll()
	if fired != 2 {
		t.Fatalf("fired %d, want 2", fired)
	}
	if ev.At() != 10 {
		t.Fatalf("stale handle At = %v, want its original time 10", ev.At())
	}
}

// TestEngineSteadyStateAllocs verifies the zero-allocation claim: a
// self-rescheduling chain and a schedule+cancel churn loop both run
// without allocating once the pool and ladder warm up.
func TestEngineSteadyStateAllocs(t *testing.T) {
	eng := NewEngine(11)
	var chain func()
	n := 0
	chain = func() {
		n++
		eng.Schedule(100, chain)
	}
	eng.Schedule(100, chain)
	eng.Run(100 * 100) // warm up pool
	avg := testing.AllocsPerRun(100, func() {
		eng.Run(eng.Now() + 100)
	})
	if avg > 0.1 {
		t.Fatalf("steady-state chain allocates %.2f allocs/step, want ~0", avg)
	}

	// Churn: schedule far-future events and cancel them.
	evs := make([]Event, 0, 64)
	churn := func() {
		evs = evs[:0]
		for i := 0; i < 64; i++ {
			evs = append(evs, eng.Schedule(Time(1000+i*17), func() {}))
		}
		for _, ev := range evs {
			ev.Cancel()
		}
	}
	churn() // warm up
	avg = testing.AllocsPerRun(100, churn)
	if avg > 0.5 {
		t.Fatalf("schedule/cancel churn allocates %.2f allocs/round, want ~0", avg)
	}
}

// churnOps is the shared schedule/cancel-heavy workload for the
// benchmark pair below: a wide far-future pending set, and every fired
// event planting four far-horizon decoys it cancels on the spot. The
// pair quantifies the ladder+pool rewrite against the container/heap
// engine it replaced on the workload that stressed it most.
const churnPending = 100_000

// BenchmarkChurnLadder drives the churn workload on the real engine.
func BenchmarkChurnLadder(b *testing.B) {
	eng := NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		for d := 0; d < 4; d++ {
			eng.Schedule(Time(1_000_000_000+n%997), func() {}).Cancel()
		}
		if n < b.N {
			eng.Schedule(Time(10+n%89), tick)
		}
	}
	for i := 0; i < churnPending; i++ {
		eng.Schedule(Time(1+i)*1000, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.Schedule(1, tick)
	for n < b.N {
		eng.Run(eng.Now() + 1_000_000)
	}
}

// BenchmarkChurnReferenceHeap drives the identical workload on the
// verbatim pre-rewrite container/heap engine.
func BenchmarkChurnReferenceHeap(b *testing.B) {
	eng := &refEngine{}
	n := 0
	var tick func()
	tick = func() {
		n++
		for d := 0; d < 4; d++ {
			eng.cancel(eng.at(eng.now+Time(1_000_000_000+n%997), func() {}))
		}
		if n < b.N {
			eng.at(eng.now+Time(10+n%89), tick)
		}
	}
	for i := 0; i < churnPending; i++ {
		eng.at(Time(1+i)*1000, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.at(eng.now+1, tick)
	for n < b.N {
		eng.run(eng.now + 1_000_000)
	}
}
