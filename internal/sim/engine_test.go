package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	ev.Cancel()
	e.RunAll()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestEngineCancelRemovesEagerly(t *testing.T) {
	e := NewEngine(1)
	var evs []Event
	for i := 0; i < 100; i++ {
		i := i
		evs = append(evs, e.Schedule(Time(1000+i), func() { _ = i }))
	}
	if e.Pending() != 100 {
		t.Fatalf("Pending = %d, want 100", e.Pending())
	}
	// Cancel from the middle, the ends, and twice over: the pending set
	// must shrink immediately, not at fire time.
	for i, ev := range evs {
		if i%2 == 0 {
			ev.Cancel()
			ev.Cancel() // double-cancel is a no-op
		}
	}
	if e.Pending() != 50 {
		t.Fatalf("Pending = %d after canceling half, want 50", e.Pending())
	}
	fired := 0
	e.Schedule(5000, func() {})
	for e.Step() {
		fired++
	}
	if fired != 51 {
		t.Fatalf("fired %d events, want the 50 live ones + sentinel", fired)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", e.Pending())
	}
}

func TestEngineCancelDuringRun(t *testing.T) {
	e := NewEngine(1)
	var later Event
	canceledFired := false
	e.Schedule(10, func() { later.Cancel() })
	later = e.Schedule(20, func() { canceledFired = true })
	e.RunAll()
	if canceledFired {
		t.Fatal("event canceled mid-run still fired")
	}
	if !later.Canceled() {
		t.Fatal("Canceled() = false")
	}
}

func TestEngineRunHorizon(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.Schedule(10, func() { fired = append(fired, e.Now()) })
	e.Schedule(20, func() { fired = append(fired, e.Now()) })
	e.Schedule(30, func() { fired = append(fired, e.Now()) })
	e.Run(20)
	if len(fired) != 2 {
		t.Fatalf("fired %d events before horizon, want 2", len(fired))
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %v, want horizon 20", e.Now())
	}
	e.Run(100)
	if len(fired) != 3 {
		t.Fatalf("fired %d events total, want 3", len(fired))
	}
}

func TestEngineScheduleFromEvent(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	e.Schedule(5, func() {
		times = append(times, e.Now())
		e.Schedule(5, func() { times = append(times, e.Now()) })
	})
	e.RunAll()
	if len(times) != 2 || times[0] != 5 || times[1] != 10 {
		t.Fatalf("chained schedule times = %v", times)
	}
}

func TestEnginePastClamped(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10, func() {
		e.At(3, func() {
			if e.Now() != 10 {
				t.Errorf("past event fired at %v, want clamp to 10", e.Now())
			}
		})
	})
	e.RunAll()
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Schedule(1, func() { count++; e.Stop() })
	e.Schedule(2, func() { count++ })
	e.RunAll()
	if count != 1 {
		t.Fatalf("Stop did not halt run; count = %d", count)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	tk := e.Tick(10, 0, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 3 {
			tk := ticks // capture for message
			_ = tk
		}
	})
	e.Run(35)
	tk.Stop()
	e.Run(100)
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3: %v", len(ticks), ticks)
	}
	for i, tt := range ticks {
		if tt != Time(10*(i+1)) {
			t.Fatalf("tick %d at %v, want %v", i, tt, Time(10*(i+1)))
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		e := NewEngine(seed)
		rng := e.NewRand(7)
		var out []Time
		var step func()
		step = func() {
			out = append(out, e.Now())
			if len(out) < 50 {
				e.Schedule(Time(rng.Intn(1000)+1), step)
			}
		}
		e.Schedule(1, step)
		e.RunAll()
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs; RNG not wired")
	}
}

// Property: for any set of non-negative delays, events fire in sorted order
// and the clock never moves backwards.
func TestEventOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine(99)
		var fired []Time
		for _, d := range delays {
			e.Schedule(Time(d), func() { fired = append(fired, e.Now()) })
		}
		e.RunAll()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2us"},
		{3 * Millisecond, "3ms"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}
