// Package tivopc implements the paper's case study (§6): a TiVo-like
// streaming appliance spanning a Video Server and a Video Client, in the
// configurations the evaluation measures —
//
//   - Simple Server: user-space loop, sleep(5 ms) → NFS read() → UDP send()
//   - Sendfile Server: kernel readahead page cache + zero-copy sendfile
//   - Offloaded Server: Offcodes on the programmable NIC (File + Broadcast),
//     paced by the device's precise hardware timer
//   - User-space Client: interrupt → copy → host MPEG decode → display,
//     plus recording writes
//   - Offloaded Client: NIC multicasts packets to GPU and Smart Disk by
//     peer DMA; the GPU decodes into its framebuffer; the disk's NFS
//     Offcode records to the NAS; the host does nothing
//
// The testbed mirrors §6.4: two 2.4 GHz Pentium IV hosts on a gigabit
// switch, a NAS holding the movie, 1 kB every 5 ms (200 kB/s).
package tivopc

import (
	"fmt"
	"sync"

	"hydra/internal/bus"
	"hydra/internal/core"
	"hydra/internal/depot"
	"hydra/internal/device"
	"hydra/internal/hostos"
	"hydra/internal/mpeg"
	"hydra/internal/netsim"
	"hydra/internal/nfs"
	"hydra/internal/obs"
	"hydra/internal/sim"
	"hydra/internal/testbed"
)

// Stream parameters from §6.4.
const (
	ChunkBytes  = 1024
	ChunkPeriod = 5 * sim.Millisecond
	MediaPort   = 5004
	MoviePath   = "/movies/demo.mpg"
	RecordPath  = "/recordings/demo.rec"
)

// Application session names declared by SystemSpec: the streaming service
// and its client run as first-class sessions, and the server carries a
// second session for the competing background application of the
// contended scenario.
const (
	ServerAppName     = "tivo-server"
	ClientAppName     = "tivo-client"
	BackgroundAppName = "background"
)

// MovieConfig is the encoded stream profile.
func MovieConfig() mpeg.Config { return mpeg.Config{W: 320, H: 240, GOPSize: 12, BGap: 2} }

// movieCache holds the generated bitstream, grown on demand: encoding is
// deterministic, so longer prefixes are stable across runs. movieMu makes
// the cache safe for concurrent scenario replicas (testbed.Sweep).
var (
	movieMu    sync.Mutex
	movieCache []byte
)

// Movie returns at least minBytes of encoded stream.
func Movie(minBytes int) []byte {
	movieMu.Lock()
	defer movieMu.Unlock()
	cfg := MovieConfig()
	for len(movieCache) < minBytes {
		enc, err := mpeg.NewEncoder(cfg)
		if err != nil {
			panic(err)
		}
		// Estimate frames needed from current density, with headroom.
		frames := 512
		if len(movieCache) > 0 {
			perFrame := len(movieCache) / frameEstimate
			if perFrame > 0 {
				frames = minBytes/perFrame + 64
			}
		}
		for i := 0; i < frames; i++ {
			if err := enc.Add(mpeg.GenerateFrame(cfg, i)); err != nil {
				panic(err)
			}
		}
		enc.Flush()
		movieCache = enc.Bytes()
		frameEstimate = frames
	}
	return movieCache[:minBytes]
}

var frameEstimate = 512

// Testbed is the two-host-plus-NAS world of §6.4.
type Testbed struct {
	Eng *sim.Engine
	Net *netsim.Network
	// Tracer is the obs recorder attached by NewTestbedTraced (nil
	// otherwise).
	Tracer *obs.Tracer

	NASStore  *nfs.Store
	NASServer *nfs.Server

	Server        *hostos.Machine
	ServerBus     *bus.Bus
	ServerNIC     *device.Device
	ServerStation *netsim.Station
	ServerDepot   *depot.Depot
	ServerRT      *core.Runtime
	// ServerApp and BackgroundApp are the server runtime's two declared
	// sessions: the streaming service and the contended-scenario tenant.
	ServerApp     *core.App
	BackgroundApp *core.App

	Client            *hostos.Machine
	ClientBus         *bus.Bus
	ClientNIC         *device.Device
	ClientGPU         *device.Device
	ClientDisk        *device.Device
	ClientStation     *netsim.Station
	ClientDiskStation *netsim.Station
	ClientDepot       *depot.Depot
	ClientRT          *core.Runtime
	ClientApp         *core.App
}

// NASConfig models the evaluation NAS: an appliance with ~0.55 ms service
// time for small operations, ±30%. The jitter makes the host servers'
// synchronous NFS latency vary enough to smear their inter-send
// distributions across timer ticks, as Figure 9's histograms show.
func NASConfig() nfs.ServerConfig {
	return nfs.ServerConfig{
		BaseLatency: 550 * sim.Microsecond,
		PerByte:     4 * sim.Nanosecond,
		MaxRead:     8192,
		JitterFrac:  0.45,
	}
}

// SystemSpec is the declarative §6.4 topology: two Pentium IV hosts on a
// gigabit switch, a NAS appliance, a programmable NIC on the Video Server,
// and a NIC + GPU + Smart Disk (a second programmable controller whose
// firmware speaks NFS, §6.1) on the Video Client.
func SystemSpec(runFor sim.Time) testbed.Spec {
	needBytes := int(int64(runFor/ChunkPeriod))*ChunkBytes + 64*ChunkBytes
	return testbed.Spec{
		Name: "tivopc-§6.4",
		Net:  &testbed.NetSpec{Config: netsim.GigabitSwitched()},
		NAS: []testbed.NASSpec{{
			Station: "nas",
			Config:  NASConfig(),
			Files:   []testbed.FileSpec{{Path: MoviePath, Data: Movie(needBytes)}},
		}},
		Hosts: []testbed.HostSpec{
			{
				Name:     "server",
				Devices:  []device.Config{device.XScaleNIC("server-nic")},
				Stations: []string{"server"},
				Runtime:  &core.Config{},
				// Multi-tenant sessions as topology data: the streaming
				// service and a competing background application are
				// separate, individually accountable sessions on the same
				// runtime (the background one deploys only in the
				// contended scenario).
				Apps: []testbed.AppSpec{
					{Name: ServerAppName},
					{Name: BackgroundAppName},
				},
				IdleLoad: testbed.DefaultIdleLoad(),
			},
			{
				Name: "client",
				Devices: []device.Config{
					device.XScaleNIC("client-nic"),
					device.GPU("client-gpu"),
					device.SmartDisk("client-disk"),
				},
				Stations: []string{"client", "client-disk"},
				Runtime:  &core.Config{},
				Apps:     []testbed.AppSpec{{Name: ClientAppName}},
				IdleLoad: testbed.DefaultIdleLoad(),
			},
		},
	}
}

// NewTestbed builds the full §6.4 environment with the movie loaded on the
// NAS sized for runFor of streaming.
func NewTestbed(seed int64, runFor sim.Time) *Testbed {
	return NewTestbedTraced(seed, runFor, nil)
}

// NewTestbedTraced is NewTestbed with an optional obs trace config; when
// non-nil the recorder is attached before any component is built and the
// Tracer field is populated (cmd/tivopc -trace).
func NewTestbedTraced(seed int64, runFor sim.Time, trace *obs.Config) *Testbed {
	spec := SystemSpec(runFor)
	spec.Trace = trace
	sys, err := testbed.New(seed, spec)
	if err != nil {
		panic("tivopc: " + err.Error()) // static spec; cannot fail
	}
	return fromSystem(sys)
}

// fromSystem adapts a built SystemSpec topology to the flat Testbed handle
// the scenario drivers use.
func fromSystem(sys *testbed.System) *Testbed {
	nas := sys.NAS("nas")
	server := sys.Host("server")
	client := sys.Host("client")
	return &Testbed{
		Eng:               sys.Eng,
		Net:               sys.Net,
		Tracer:            sys.Tracer,
		NASStore:          nas.Store,
		NASServer:         nas.Server,
		Server:            server.Machine,
		ServerBus:         server.Bus,
		ServerNIC:         server.Device("server-nic"),
		ServerStation:     sys.Station("server"),
		ServerDepot:       server.Depot,
		ServerRT:          server.Runtime,
		ServerApp:         server.App(ServerAppName),
		BackgroundApp:     server.App(BackgroundAppName),
		Client:            client.Machine,
		ClientBus:         client.Bus,
		ClientNIC:         client.Device("client-nic"),
		ClientGPU:         client.Device("client-gpu"),
		ClientDisk:        client.Device("client-disk"),
		ClientStation:     sys.Station("client"),
		ClientDiskStation: sys.Station("client-disk"),
		ClientDepot:       client.Depot,
		ClientRT:          client.Runtime,
		ClientApp:         client.App(ClientAppName),
	}
}

// ArrivalRecorder captures packet arrival times at the client NIC, before
// any client-side processing — the paper measures "packet jitter ... at the
// client machine".
type ArrivalRecorder struct {
	Times []sim.Time
}

// Gaps returns inter-arrival times in milliseconds.
func (a *ArrivalRecorder) Gaps() []float64 {
	if len(a.Times) < 2 {
		return nil
	}
	out := make([]float64, 0, len(a.Times)-1)
	for i := 1; i < len(a.Times); i++ {
		out = append(out, (a.Times[i] - a.Times[i-1]).Milliseconds())
	}
	return out
}

func (tb *Testbed) String() string {
	return fmt.Sprintf("testbed(seed=%d, nas=%d files)", tb.Eng.Seed(), len(tb.NASStore.Paths()))
}
