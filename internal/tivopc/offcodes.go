package tivopc

import (
	"encoding/binary"
	"fmt"

	"hydra/internal/core"
	"hydra/internal/device"
	"hydra/internal/guid"
	"hydra/internal/mpeg"
	"hydra/internal/netsim"
	"hydra/internal/nfs"
	"hydra/internal/objfile"
	"hydra/internal/sim"
)

// Offcode GUIDs for the TiVoPC components (Table 1 / Figure 8).
const (
	GUIDServerStreamer guid.GUID = 9001
	GUIDFile           guid.GUID = 9002
	GUIDBroadcast      guid.GUID = 9003
	GUIDClientStreamer guid.GUID = 9011
	GUIDDecoder        guid.GUID = 9012
	GUIDDisplay        guid.GUID = 9013
	GUIDDiskFile       guid.GUID = 9014
)

func serverODF(bind string, g guid.GUID, imports string) string {
	return fmt.Sprintf(`<offcode>
  <package><bindname>%s</bindname><GUID>%d</GUID></package>
  <sw-env>%s</sw-env>
  <targets>
    <device-class id="0x0001"><name>Network Device</name></device-class>
    <host-fallback>true</host-fallback>
  </targets>
</offcode>`, bind, g, imports)
}

func clientODF(bind string, g guid.GUID, className string, imports string) string {
	return fmt.Sprintf(`<offcode>
  <package><bindname>%s</bindname><GUID>%d</GUID></package>
  <sw-env>%s</sw-env>
  <targets>
    <device-class><name>%s</name></device-class>
    <host-fallback>true</host-fallback>
  </targets>
</offcode>`, bind, g, imports, className)
}

func pullImport(bind string, g guid.GUID) string {
	return fmt.Sprintf(`<import><file>/tivo/%s.odf</file><bindname>%s</bindname>
<reference type="Pull"><GUID>%d</GUID></reference></import>`, bind, bind, g)
}

func gangImport(bind string, g guid.GUID) string {
	return fmt.Sprintf(`<import><file>/tivo/%s.odf</file><bindname>%s</bindname>
<reference type="Gang"><GUID>%d</GUID></reference></import>`, bind, bind, g)
}

// --- Server-side Offcodes ---

// fileOffcode is the paper's File component: on the server it streams the
// movie from the NAS into device-local readahead buffers using the NFS
// protocol ("we have created an NFS Offcode that implements various parts
// of the NFS protocol", §6.1).
type fileOffcode struct {
	tb      *Testbed
	station *netsim.Station
	port    uint16
	path    string

	ctx      *core.Context
	cli      *nfs.Client
	handle   uint64
	size     int
	offset   uint64
	buffered [][]byte
	lowWater int
	pending  bool
	eof      bool
}

func (f *fileOffcode) Initialize(ctx *core.Context) error {
	f.ctx = ctx
	if ctx.Device == nil {
		return fmt.Errorf("tivo.File: host placement not supported in offloaded mode")
	}
	f.cli = nfs.NewClient(f.tb.Eng, f.station, "nas", f.port, 0)
	f.lowWater = 24
	// Reset transient streaming state: a re-instantiated (migrated) File
	// re-opens the movie and resumes from the checkpointed offset. Chunks
	// that were buffered in the dead device's memory are gone.
	f.handle, f.size = 0, 0
	f.buffered, f.pending, f.eof = nil, false, false
	return nil
}

// Checkpoint and Restore carry the stream position across a migration
// (core.Checkpointer), so the client resumes mid-movie instead of from the
// first frame.
func (f *fileOffcode) Checkpoint() []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], f.offset)
	return b[:]
}

func (f *fileOffcode) Restore(state []byte) error {
	if len(state) != 8 {
		return fmt.Errorf("tivo.File: checkpoint of %d bytes", len(state))
	}
	f.offset = binary.LittleEndian.Uint64(state)
	return nil
}

func (f *fileOffcode) Start() error {
	f.cli.Lookup(f.path, func(h uint64, err error) {
		if err != nil {
			return
		}
		f.handle = h
		f.cli.GetAttr(h, func(size int, err error) {
			f.size = size
			f.refill()
		})
	})
	return nil
}

func (f *fileOffcode) Stop() error { return nil }

func (f *fileOffcode) refill() {
	if f.pending || f.eof || f.handle == 0 {
		return
	}
	if len(f.buffered) >= f.lowWater {
		return
	}
	f.pending = true
	f.cli.Read(f.handle, f.offset, 8192, func(data []byte, err error) {
		f.pending = false
		if err != nil || len(data) == 0 {
			f.eof = true
			return
		}
		f.offset += uint64(len(data))
		// Device firmware slices the reply into send-sized chunks.
		f.ctx.Device.Exec(2000, func() {
			for off := 0; off < len(data); off += ChunkBytes {
				end := off + ChunkBytes
				if end > len(data) {
					end = len(data)
				}
				f.buffered = append(f.buffered, data[off:end])
			}
			f.refill()
		})
	})
}

// Next pops the next buffered chunk (nil when dry) and keeps the readahead
// window warm.
func (f *fileOffcode) Next() []byte {
	if len(f.buffered) == 0 {
		f.refill()
		return nil
	}
	chunk := f.buffered[0]
	f.buffered = f.buffered[1:]
	f.refill()
	return chunk
}

// broadcastOffcode is the paper's Broadcast component: unreliable UDP
// transmission toward the client.
type broadcastOffcode struct {
	tb      *Testbed
	station *netsim.Station
	ctx     *core.Context
	Sent    int
}

func (b *broadcastOffcode) Initialize(ctx *core.Context) error { b.ctx = ctx; return nil }
func (b *broadcastOffcode) Start() error                       { return nil }
func (b *broadcastOffcode) Stop() error                        { return nil }

// Send transmits one chunk from the device.
func (b *broadcastOffcode) Send(dst string, data []byte) {
	b.ctx.Device.Exec(800, func() {
		_ = b.station.Send(dst, MediaPort, data)
		b.Sent++
	})
}

// serverStreamerOffcode paces the stream with the device's hardware timer:
// "a device can provide operation timeliness guarantees that cannot be
// matched by a general purpose kernel" (§1.1).
type serverStreamerOffcode struct {
	tb     *Testbed
	ctx    *core.Context
	file   *fileOffcode
	bcast  *broadcastOffcode
	stopAt sim.Time
	ticker *sim.Ticker
	Sent   int
}

func (s *serverStreamerOffcode) Initialize(ctx *core.Context) error {
	s.ctx = ctx
	return nil
}

func (s *serverStreamerOffcode) Start() error {
	// Resolve peers through the runtime, as an Offcode would via
	// hydra.Runtime.GetOffcode.
	fh, err := s.ctx.Runtime.GetOffcode("tivo.File")
	if err != nil {
		return err
	}
	bh, err := s.ctx.Runtime.GetOffcode("tivo.Broadcast")
	if err != nil {
		return err
	}
	s.file = fh.Behaviour().(*fileOffcode)
	s.bcast = bh.Behaviour().(*broadcastOffcode)

	s.ticker = s.ctx.Device.PeriodicTimer(ChunkPeriod, func() {
		if s.tb.Eng.Now() >= s.stopAt {
			s.ticker.Stop()
			return
		}
		s.ctx.Device.Exec(1500, func() {
			if chunk := s.file.Next(); chunk != nil {
				s.bcast.Send("client", chunk)
				s.Sent++
			}
		})
	})
	return nil
}

func (s *serverStreamerOffcode) Stop() error {
	if s.ticker != nil {
		s.ticker.Stop()
	}
	return nil
}

// stockServerOffcodes registers the server-side TiVoPC Offcodes with the
// server runtime's depot.
func stockServerOffcodes(tb *Testbed, stopAt sim.Time) (*serverStreamerOffcode, error) {
	d := tb.ServerDepot
	d.PutFile("/tivo/tivo.File.odf", []byte(serverODF("tivo.File", GUIDFile, "")))
	d.PutFile("/tivo/tivo.Broadcast.odf", []byte(serverODF("tivo.Broadcast", GUIDBroadcast, "")))
	d.PutFile("/tivo/tivo.Server.odf", []byte(serverODF("tivo.Server", GUIDServerStreamer,
		pullImport("tivo.File", GUIDFile)+pullImport("tivo.Broadcast", GUIDBroadcast))))

	for _, spec := range []struct {
		name string
		g    guid.GUID
		size int
	}{
		{"tivo.File", GUIDFile, 6 << 10},
		{"tivo.Broadcast", GUIDBroadcast, 2 << 10},
		{"tivo.Server", GUIDServerStreamer, 3 << 10},
	} {
		obj := objfile.Synthesize(spec.name, spec.g, spec.size,
			[]string{"hydra.Heap.Alloc", "hydra.Channel.Write", "hydra.Runtime.GetOffcode"})
		if err := d.RegisterObject(obj); err != nil {
			return nil, err
		}
	}

	streamer := &serverStreamerOffcode{tb: tb, stopAt: stopAt}
	if err := d.RegisterFactory(GUIDFile, func() any {
		return &fileOffcode{tb: tb, station: tb.ServerStation, port: 5003, path: MoviePath}
	}); err != nil {
		return nil, err
	}
	if err := d.RegisterFactory(GUIDBroadcast, func() any {
		return &broadcastOffcode{tb: tb, station: tb.ServerStation}
	}); err != nil {
		return nil, err
	}
	if err := d.RegisterFactory(GUIDServerStreamer, func() any { return streamer }); err != nil {
		return nil, err
	}
	return streamer, nil
}

// runOffloaded deploys the server Offcodes through the streaming service's
// application session and lets them stream autonomously.
func (h *ServerHarness) runOffloaded() error {
	streamer, err := stockServerOffcodes(h.tb, h.stopAt)
	if err != nil {
		return err
	}
	plan := h.tb.ServerApp.Plan()
	if err := plan.AddRoot("/tivo/tivo.Server.odf"); err != nil {
		return err
	}
	// The commit completes within the first simulated millisecond once the
	// caller runs the engine; its outcome is checked via DeployErr then.
	plan.Commit(h.deploy.arm())
	h.offloadedStreamer = streamer
	return nil
}

// --- Client-side Offcodes ---

// decoderOffcode runs the MPEG decode on the GPU ("the GPU may have
// specialized MPEG support on board", §6.3). It really decodes the stream
// and hands frames to the Display.
type decoderOffcode struct {
	tb      *Testbed
	ctx     *core.Context
	dec     *mpeg.Decoder
	display *displayOffcode
	Frames  int
}

func (d *decoderOffcode) Initialize(ctx *core.Context) error {
	d.ctx = ctx
	d.dec = mpeg.NewDecoder()
	return nil
}

func (d *decoderOffcode) Start() error {
	dh, err := d.ctx.Runtime.GetOffcode("tivo.Display")
	if err != nil {
		return err
	}
	d.display = dh.Behaviour().(*displayOffcode)
	return nil
}

func (d *decoderOffcode) Stop() error { return nil }

// Feed accepts a chunk that arrived at the GPU and decodes whatever
// completes. GPU hardware assist: ~4 cycles/pixel.
func (d *decoderOffcode) Feed(chunk []byte) {
	frames := d.dec.Feed(chunk)
	if len(frames) == 0 {
		return
	}
	var cycles uint64
	for _, f := range frames {
		cycles += 20_000 + uint64(4*f.W*f.H)
	}
	d.ctx.Device.Exec(cycles, func() {
		for _, f := range frames {
			d.Frames++
			d.display.Show(f)
		}
	})
}

// displayOffcode owns the GPU framebuffer.
type displayOffcode struct {
	tb     *Testbed
	ctx    *core.Context
	fbAddr uint64
	Shown  int
	// LastChecksum fingerprints the most recent frame.
	LastChecksum uint64
	// VerifiedOK / VerifyFail compare early frames pixel-for-pixel against
	// the source video (bounded to the first frames to cap cost).
	VerifiedOK int
	VerifyFail int
}

func (d *displayOffcode) Initialize(ctx *core.Context) error {
	d.ctx = ctx
	if ctx.Device != nil {
		addr, err := ctx.Device.AllocMem(4 << 20) // framebuffer
		if err != nil {
			return err
		}
		d.fbAddr = addr
	}
	return nil
}

func (d *displayOffcode) Start() error { return nil }
func (d *displayOffcode) Stop() error  { return nil }

// Show blits one frame into the framebuffer.
func (d *displayOffcode) Show(f mpeg.Frame) {
	d.Shown++
	d.LastChecksum = frameChecksum(f)
	if d.Shown <= 32 {
		src := mpeg.GenerateFrame(MovieConfig(), f.Seq)
		if frameChecksum(src) == d.LastChecksum {
			d.VerifiedOK++
		} else {
			d.VerifyFail++
		}
	}
}

func frameChecksum(f mpeg.Frame) uint64 {
	var h uint64 = 1469598103934665603
	for _, p := range f.Pix {
		h = (h ^ uint64(p)) * 1099511628211
	}
	return h
}

// diskFileOffcode is the Smart Disk's File component: it receives chunks
// over the bus and persists them to the NAS through its own NFS client and
// its own network port, with zero host involvement.
type diskFileOffcode struct {
	tb     *Testbed
	ctx    *core.Context
	cli    *nfs.Client
	handle uint64
	offset uint64
	queue  [][]byte
	busy   bool
	// Written counts bytes persisted to the NAS.
	Written int
}

func (f *diskFileOffcode) Initialize(ctx *core.Context) error {
	f.ctx = ctx
	f.cli = nfs.NewClient(f.tb.Eng, f.tb.ClientDiskStation, "nas", 5006, 0)
	return nil
}

func (f *diskFileOffcode) Start() error {
	f.cli.Create(RecordPath, func(h uint64, err error) {
		if err == nil {
			f.handle = h
			f.pump()
		}
	})
	return nil
}

func (f *diskFileOffcode) Stop() error { return nil }

// Record queues one chunk for persistence.
func (f *diskFileOffcode) Record(chunk []byte) {
	f.queue = append(f.queue, chunk)
	f.pump()
}

func (f *diskFileOffcode) pump() {
	if f.busy || f.handle == 0 || len(f.queue) == 0 {
		return
	}
	f.busy = true
	chunk := f.queue[0]
	f.queue = f.queue[1:]
	off := f.offset
	f.offset += uint64(len(chunk))
	f.ctx.Device.Exec(1200, func() {
		f.cli.Write(f.handle, off, chunk, func(n int, err error) {
			if err == nil {
				f.Written += n
			}
			f.busy = false
			f.pump()
		})
	})
}

// clientStreamerOffcode runs on the client NIC: each received packet is
// multicast by peer DMA to the GPU (Decoder) and the Smart Disk (File) —
// Figure 2's data flow, with no host memory crossing.
type clientStreamerOffcode struct {
	tb      *Testbed
	ctx     *core.Context
	decoder *decoderOffcode
	disk    *diskFileOffcode
	Packets int
}

func (s *clientStreamerOffcode) Initialize(ctx *core.Context) error {
	s.ctx = ctx
	return nil
}

func (s *clientStreamerOffcode) Start() error {
	dh, err := s.ctx.Runtime.GetOffcode("tivo.Decoder")
	if err != nil {
		return err
	}
	s.decoder = dh.Behaviour().(*decoderOffcode)
	fh, err := s.ctx.Runtime.GetOffcode("tivo.DiskFile")
	if err != nil {
		return err
	}
	s.disk = fh.Behaviour().(*diskFileOffcode)
	return nil
}

func (s *clientStreamerOffcode) Stop() error { return nil }

// Packet handles one arriving media packet on the NIC.
func (s *clientStreamerOffcode) Packet(data []byte) {
	s.Packets++
	s.ctx.Device.Exec(1200, func() {
		// One bus transaction reaches both peers (PCIe multicast, §1 fn.2).
		peers := []*device.Device{s.tb.ClientGPU, s.tb.ClientDisk}
		s.ctx.Device.DMAToPeers(peers, len(data), func() {
			s.decoder.Feed(data)
			s.disk.Record(data)
		})
	})
}
