package tivopc

import (
	"fmt"

	"hydra/internal/core"
	"hydra/internal/guid"
	"hydra/internal/objfile"
	"hydra/internal/sim"
)

// The contended scenario: the offloaded Video Server streams from its own
// application session while a second tenant — a host-placed worker in the
// BackgroundAppName session — burns server CPU and holds pinned memory on
// the same runtime. Because the stream is paced by the NIC's hardware
// timer and the tenants are isolated sessions, the client-visible jitter
// stays at the offloaded server's device-timer level, and closing the
// background session returns every byte it pinned.

// GUIDBackgroundWorker names the background tenant's Offcode.
const GUIDBackgroundWorker guid.GUID = 9021

// BackgroundPinBytes is the host memory the background session pins.
const BackgroundPinBytes = 256 << 10

// bgWorkerOffcode is a host-placed compute loop: every period it spends
// busyCycles of server CPU, modeling an unrelated co-resident application.
type bgWorkerOffcode struct {
	tb         *Testbed
	period     sim.Time
	busyCycles uint64
	stopAt     sim.Time

	ctx    *core.Context
	ticker *sim.Ticker
	// Iterations counts completed work periods.
	Iterations int
}

func (w *bgWorkerOffcode) Initialize(ctx *core.Context) error {
	w.ctx = ctx
	if ctx.Device != nil {
		return fmt.Errorf("tivo.BackgroundWorker: expected host placement, got %s", ctx.Device.Name())
	}
	return nil
}

func (w *bgWorkerOffcode) Start() error {
	task := w.ctx.Host.NewTask("bg-worker")
	w.ticker = w.tb.Eng.Tick(w.period, 0, func() {
		if w.tb.Eng.Now() >= w.stopAt {
			w.ticker.Stop()
			return
		}
		task.Compute(w.busyCycles, func() { w.Iterations++ })
	})
	return nil
}

func (w *bgWorkerOffcode) Stop() error {
	if w.ticker != nil {
		w.ticker.Stop()
	}
	return nil
}

const backgroundODF = `<offcode>
  <package><bindname>tivo.BackgroundWorker</bindname><GUID>9021</GUID></package>
  <targets>
    <device-class><name>Compute Accelerator</name></device-class>
    <host-fallback>true</host-fallback>
  </targets>
</offcode>`

// BackgroundHarness is the running background tenant.
type BackgroundHarness struct {
	App    *core.App
	Worker *bgWorkerOffcode
	// PinnedBytes is what the session pinned at start.
	PinnedBytes int

	deploy deployOutcome
}

// DeployErr reports how the tenant's commit settled. The commit runs over
// simulated time, so check it only after the engine has run.
func (h *BackgroundHarness) DeployErr() error { return h.deploy.Err() }

// StartBackgroundApp deploys the competing tenant into the server's
// background session: it pins BackgroundPinBytes of host memory against
// the session's memory quota and commits a one-root plan for the worker,
// which lands on the host (no Compute Accelerator exists in the testbed).
func StartBackgroundApp(tb *Testbed, stopAt sim.Time) (*BackgroundHarness, error) {
	d := tb.ServerDepot
	d.PutFile("/tivo/tivo.BackgroundWorker.odf", []byte(backgroundODF))
	obj := objfile.Synthesize("tivo.BackgroundWorker", GUIDBackgroundWorker, 2<<10,
		[]string{"hydra.Heap.Alloc"})
	if err := d.RegisterObject(obj); err != nil {
		return nil, err
	}
	worker := &bgWorkerOffcode{
		tb:         tb,
		period:     10 * sim.Millisecond,
		busyCycles: 400_000,
		stopAt:     stopAt,
	}
	if err := d.RegisterFactory(GUIDBackgroundWorker, func() any { return worker }); err != nil {
		return nil, err
	}
	h := &BackgroundHarness{App: tb.BackgroundApp, Worker: worker}
	if _, _, err := tb.BackgroundApp.PinMemory(BackgroundPinBytes); err != nil {
		return nil, err
	}
	h.PinnedBytes = BackgroundPinBytes
	plan := tb.BackgroundApp.Plan()
	if err := plan.AddRoot("/tivo/tivo.BackgroundWorker.odf"); err != nil {
		return nil, err
	}
	// The commit's instantiate/Initialize phases run on the virtual clock;
	// the harness records the outcome for DeployErr once it settles.
	plan.Commit(h.deploy.arm())
	return h, nil
}

// ContendedRun is the measured outcome of the contended scenario.
type ContendedRun struct {
	// Stream is the offloaded server's measurement with the tenant present.
	Stream *ServerRun
	// BackgroundIterations counts the tenant's completed work periods.
	BackgroundIterations int
	// ReclaimedBytes is the host memory returned when the background
	// session closed (pinned buffers plus its Offcode's OOB ring).
	ReclaimedBytes int64
}

// RunContendedScenario streams the offloaded server for duration while the
// background tenant competes on the server host, then closes the
// background session and reports what its teardown reclaimed.
func RunContendedScenario(seed int64, duration sim.Time) (*ContendedRun, error) {
	tb := NewTestbed(seed, duration)
	run := &ContendedRun{Stream: &ServerRun{Kind: OffloadedServer}}

	client, err := StartClient(tb, IdleClient)
	if err != nil {
		return nil, err
	}
	bg, err := StartBackgroundApp(tb, duration)
	if err != nil {
		return nil, err
	}
	cpu := tb.Server.SampleUtilization(SampleInterval)
	srv, err := StartServer(tb, OffloadedServer, duration)
	if err != nil {
		return nil, err
	}

	tb.Eng.Run(duration)

	if err := bg.DeployErr(); err != nil {
		return nil, fmt.Errorf("tivopc: background deploy: %w", err)
	}
	if err := srv.DeployErr(); err != nil {
		return nil, fmt.Errorf("tivopc: server deploy: %w", err)
	}
	run.Stream.Sent = srv.TotalSent()
	run.Stream.JitterGaps = client.Arrivals.Gaps()
	if len(cpu.Samples) > 1 {
		run.Stream.CPUSamples = cpu.Samples[1:]
	}
	run.BackgroundIterations = bg.Worker.Iterations
	if run.BackgroundIterations == 0 {
		return nil, fmt.Errorf("tivopc: background tenant never ran")
	}
	if len(run.Stream.JitterGaps) < 10 {
		return nil, fmt.Errorf("tivopc: contended stream produced only %d arrivals",
			len(run.Stream.JitterGaps))
	}

	before := tb.Server.LiveBytes()
	if err := bg.App.Close(); err != nil {
		return nil, fmt.Errorf("tivopc: background close: %w", err)
	}
	run.ReclaimedBytes = before - tb.Server.LiveBytes()
	return run, nil
}
