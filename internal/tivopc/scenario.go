package tivopc

import (
	"fmt"

	"hydra/internal/sim"
	"hydra/internal/stats"
)

// SampleInterval matches the paper's methodology: "samples were taken
// every 5 seconds".
const SampleInterval = 5 * sim.Second

// ServerRun is the measured outcome of one server-side scenario.
type ServerRun struct {
	Kind       ServerKind
	Sent       int
	JitterGaps []float64 // client-side inter-arrival, ms
	CPUSamples []float64 // server CPU utilization per window, %
	MissRates  []float64 // server kernel L2 miss rate per window
}

// JitterSummary summarizes the jitter gaps (Table 2 row).
func (r *ServerRun) JitterSummary() stats.Summary { return stats.Summarize(r.JitterGaps) }

// CPUSummary summarizes the CPU samples (Table 3 row).
func (r *ServerRun) CPUSummary() stats.Summary { return stats.Summarize(r.CPUSamples) }

// MeanMissRate averages the kernel L2 miss-rate samples (Figure 10 bar).
func (r *ServerRun) MeanMissRate() float64 { return stats.Summarize(r.MissRates).Mean }

// RunServerScenario executes one server variant for duration with a
// passive (recording-only) client, as in the paper's server-side
// benchmarks. kind 0 (ServerKind zero value is invalid) is treated as
// "idle": no server runs, producing the Idle baseline rows.
func RunServerScenario(kind ServerKind, seed int64, duration sim.Time) (*ServerRun, error) {
	tb := NewTestbed(seed, duration)
	run := &ServerRun{Kind: kind}

	client, err := StartClient(tb, IdleClient)
	if err != nil {
		return nil, err
	}

	cpu := tb.Server.SampleUtilization(SampleInterval)
	miss := tb.Server.SampleKernelMissRate(SampleInterval)

	var srv *ServerHarness
	if kind != 0 {
		srv, err = StartServer(tb, kind, duration)
		if err != nil {
			return nil, err
		}
		defer func() { run.Sent = srv.TotalSent() }()
	}

	tb.Eng.Run(duration)

	if srv != nil {
		if err := srv.DeployErr(); err != nil {
			return nil, err
		}
	}
	run.JitterGaps = client.Arrivals.Gaps()
	// Drop the first window (deployment + cold caches).
	if len(cpu.Samples) > 1 {
		run.CPUSamples = cpu.Samples[1:]
	}
	if len(miss.Samples) > 1 {
		run.MissRates = miss.Samples[1:]
	}
	if kind != 0 && len(run.JitterGaps) < 10 {
		return nil, fmt.Errorf("tivopc: server %v produced only %d arrivals", kind, len(run.JitterGaps))
	}
	return run, nil
}

// ClientRun is the measured outcome of one client-side scenario.
type ClientRun struct {
	Kind          ClientKind
	CPUSamples    []float64
	L2Misses      uint64 // total client L2 misses over the run (all contexts)
	FramesDecoded int
	Recorded      int // bytes persisted to the NAS by the recording path
	Verified      bool
}

// CPUSummary summarizes the client CPU samples (Table 4 row).
func (r *ClientRun) CPUSummary() stats.Summary { return stats.Summarize(r.CPUSamples) }

// RunClientScenario executes one client variant for duration, fed by the
// offloaded server (the paper's client benchmarks stream the same movie;
// the server choice does not affect client-side costs, and the offloaded
// server is the steadiest source).
func RunClientScenario(kind ClientKind, seed int64, duration sim.Time) (*ClientRun, error) {
	tb := NewTestbed(seed, duration)
	run := &ClientRun{Kind: kind}

	client, err := StartClient(tb, kind)
	if err != nil {
		return nil, err
	}
	var srv *ServerHarness
	if kind != IdleClient {
		if srv, err = StartServer(tb, OffloadedServer, duration); err != nil {
			return nil, err
		}
	}

	cpu := tb.Client.SampleUtilization(SampleInterval)
	missBaseline := tb.Client.L2().TotalStats().Misses

	tb.Eng.Run(duration)

	if err := client.DeployErr(); err != nil {
		return nil, err
	}
	if srv != nil {
		if err := srv.DeployErr(); err != nil {
			return nil, err
		}
	}
	if len(cpu.Samples) > 1 {
		run.CPUSamples = cpu.Samples[1:]
	}
	run.L2Misses = tb.Client.L2().TotalStats().Misses - missBaseline

	switch kind {
	case UserspaceClient:
		run.FramesDecoded = client.FramesDecoded
		run.Verified = client.FramesDecoded > 0 && client.dec.Corrupt == 0
	case OffloadedClient:
		if err := client.VerifyPlacement(); err != nil {
			return nil, err
		}
		run.FramesDecoded = client.Decoder.Frames
		run.Recorded = client.DiskFile.Written
		run.Verified = client.Decoder.Frames > 0 && client.Decoder.dec.Corrupt == 0 &&
			client.Display.Shown == client.Decoder.Frames
	default:
		run.Verified = true
	}
	if kind != IdleClient && run.FramesDecoded == 0 {
		return nil, fmt.Errorf("tivopc: client %v decoded no frames", kind)
	}
	return run, nil
}
