package tivopc

import (
	"fmt"

	"hydra/internal/cache"
	"hydra/internal/core"
	"hydra/internal/nfs"
	"hydra/internal/sim"
)

// ServerKind selects one of the three Video Server implementations of §6.4.
type ServerKind int

// Server variants, numbered as in Figure 7.
const (
	// SimpleServer (1): two UDP socket endpoints; every 5 ms a frame chunk
	// is read into a user buffer and sent with a connected UDP socket.
	SimpleServer ServerKind = iota + 1
	// SendfileServer (2): the sendfile system call; the NIC DMAs NAS data
	// into kernel pages and scatter-gather hardware sends from them with
	// no user-space copy.
	SendfileServer
	// OffloadedServer (3): an Offcode on the NIC uses the File Offcode to
	// read from the NAS and the Broadcast Offcode to transmit.
	OffloadedServer
)

func (k ServerKind) String() string {
	switch k {
	case SimpleServer:
		return "Simple Server"
	case SendfileServer:
		return "Sendfile Server"
	case OffloadedServer:
		return "Offloaded Server"
	}
	return "unknown"
}

// ServerHarness drives one server variant on the testbed.
type ServerHarness struct {
	tb   *Testbed
	kind ServerKind

	// Sent counts chunks transmitted to the client (host variants).
	Sent int
	// offloadedStreamer is set for the offloaded variant; its Sent counter
	// lives on the device.
	offloadedStreamer *serverStreamerOffcode

	// deploy tracks the offloaded variant's commit outcome (host
	// variants never arm it).
	deploy deployOutcome

	stopAt sim.Time
}

// DeployErr reports how the offloaded variant's deployment commit settled
// (always nil for the host variants). Check it after the engine has run.
func (h *ServerHarness) DeployErr() error { return h.deploy.Err() }

// deployOutcome tracks one plan commit that settles on the virtual clock.
// arm() returns the callback to hand plan.Commit; Err is only meaningful
// once the engine has run past the commit.
type deployOutcome struct {
	pending bool
	done    bool
	err     error
}

func (o *deployOutcome) arm() func(*core.Deployment, error) {
	o.pending = true
	return func(_ *core.Deployment, err error) {
		o.err = err
		o.done = true
	}
}

// Err reports the settled commit outcome: nil when never armed, an
// in-flight error when the engine has not reached the commit's completion
// yet, the commit's own error otherwise.
func (o *deployOutcome) Err() error {
	if !o.pending {
		return nil
	}
	if !o.done {
		return fmt.Errorf("tivopc: deployment still in flight")
	}
	return o.err
}

// TotalSent reports chunks transmitted regardless of variant.
func (h *ServerHarness) TotalSent() int {
	if h.offloadedStreamer != nil {
		return h.offloadedStreamer.Sent
	}
	return h.Sent
}

// StartServer begins streaming MoviePath to the client at the paper's rate
// until the engine clock reaches stopAt.
func StartServer(tb *Testbed, kind ServerKind, stopAt sim.Time) (*ServerHarness, error) {
	h := &ServerHarness{tb: tb, kind: kind, stopAt: stopAt}
	switch kind {
	case SimpleServer:
		h.runSimple()
	case SendfileServer:
		h.runSendfile()
	case OffloadedServer:
		if err := h.runOffloaded(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("tivopc: unknown server kind %d", kind)
	}
	return h, nil
}

// Host-path cost constants, calibrated so Table 3's utilization levels
// reproduce: the Linux 2.6 NFS-over-UDP read()+send() loop of the simple
// server costs several hundred thousand cycles per 1 kB iteration once
// process wakeups, RPC construction, softirq receive, buffer management
// and copies are included; the sendfile path saves the user-space round
// trip and both payload copies.
const (
	cyclesWakeupRead   = 180_000 // wakeup + read() entry + NFS RPC build
	cyclesNFSReceive   = 140_000 // softirq + NFS reply processing (per RPC)
	cyclesUDPSend      = 250_000 // send(): socket, UDP/IP output, driver
	cyclesSendfileCall = 280_000 // sendfile(): splice setup + socket output
	cyclesRXInterrupt  = 40_000  // NIC interrupt service
)

// --- Simple Server ---
//
// Per-iteration modeled costs: a tick-quantized 5 ms sleep; a synchronous
// NFS read (GETATTR revalidation + READ, each a full NAS round trip); DMA
// of the reply payload into a kernel page (invalidating its lines); a
// kernel→user copy; then send(): a user→kernel copy into a socket buffer,
// UDP/IP output processing, and NIC DMA from host memory. The two NAS
// round trips put the iteration's work between one and two timer ticks,
// which is what stretches the paper's inter-send median to ≈7 ms.
func (h *ServerHarness) runSimple() {
	tb := h.tb
	task := tb.Server.NewTask("tivo-simple-server")
	cli := nfs.NewClient(tb.Eng, tb.ServerStation, "nas", 5001, 0)

	kernPage := tb.Server.Alloc(ChunkBytes + 512) // payload + sk_buff metadata
	userBuf := tb.Server.Alloc(ChunkBytes)
	sockBuf := tb.Server.Alloc(ChunkBytes)

	var loop func(handle uint64, offset uint64)
	loop = func(handle uint64, offset uint64) {
		if tb.Eng.Now() >= h.stopAt {
			return
		}
		task.Sleep(ChunkPeriod, func() {
			// read(): GETATTR revalidation, then READ.
			task.Syscall(cyclesWakeupRead, func() {
				cli.GetAttr(handle, func(size int, err error) {
					if err != nil || offset >= uint64(size) {
						return // end of movie
					}
					task.Syscall(cyclesNFSReceive, func() {
						cli.Read(handle, offset, ChunkBytes, func(data []byte, err error) {
							if err != nil || len(data) == 0 {
								return
							}
							// NIC deposits the NFS payload plus sk_buff
							// metadata into kernel memory.
							tb.ServerNIC.DMAToHost(kernPage, len(data)+512, nil)
							tb.ServerNIC.InterruptHost(cyclesRXInterrupt, nil)
							// NFS reply processing reads the metadata,
							// then copy_to_user moves the payload.
							task.Syscall(cyclesNFSReceive, func() {
								task.TouchRange(cache.Kernel, kernPage+uint64(len(data)), 512)
								task.Copy(cache.Kernel, kernPage, userBuf, len(data), func() {
									// send(): copy_from_user + UDP/IP output.
									task.Copy(cache.Kernel, userBuf, sockBuf, len(data), nil)
									task.Syscall(cyclesUDPSend, func() {
										tb.ServerNIC.DMAFromHost(sockBuf, len(data), func() {
											_ = tb.ServerStation.Send("client", MediaPort, data)
											h.Sent++
										})
										loop(handle, offset+uint64(len(data)))
									})
								})
							})
						})
					})
				})
			})
		})
	}
	cli.Lookup(MoviePath, func(handle uint64, err error) {
		if err != nil {
			panic("tivopc: movie missing from NAS: " + err.Error())
		}
		loop(handle, 0)
	})
}

// --- Sendfile Server ---
//
// "This call operates in two steps. In the first step, the file content is
// copied into a kernel buffer by the device's DMA engine... In the second
// step, a socket buffer is initialized with the required information about
// the location and length of the data just received" (§6.4). One NAS round
// trip per call (no user-space revalidation), the payload lands by DMA in
// a kernel page, and scatter-gather hardware transmits straight from it —
// no CPU copies at all, which is why Figure 10 shows the sendfile server's
// kernel L2 miss rate at the idle level.
func (h *ServerHarness) runSendfile() {
	tb := h.tb
	task := tb.Server.NewTask("tivo-sendfile-server")
	cli := nfs.NewClient(tb.Eng, tb.ServerStation, "nas", 5002, 0)

	kernPage := tb.Server.Alloc(ChunkBytes)
	var fileSize int

	var loop func(handle uint64, offset uint64)
	loop = func(handle uint64, offset uint64) {
		if tb.Eng.Now() >= h.stopAt || (fileSize > 0 && offset >= uint64(fileSize)) {
			return
		}
		task.Sleep(ChunkPeriod, func() {
			// sendfile(): step 1 — device DMA of the file content into a
			// kernel buffer (one NFS round trip to the NAS).
			task.Syscall(cyclesSendfileCall, func() {
				cli.Read(handle, offset, ChunkBytes, func(data []byte, err error) {
					if err != nil || len(data) == 0 {
						return
					}
					tb.ServerNIC.DMAToHost(kernPage, len(data), nil)
					tb.ServerNIC.InterruptHost(cyclesRXInterrupt, nil)
					// Step 2 — socket buffer referencing the page; header
					// touch only, then scatter-gather DMA out.
					task.Syscall(cyclesNFSReceive, func() {
						task.TouchRange(cache.Kernel, kernPage, 128)
						tb.ServerNIC.DMAFromHost(kernPage, len(data), func() {
							_ = tb.ServerStation.Send("client", MediaPort, data)
							h.Sent++
						})
						loop(handle, offset+uint64(len(data)))
					})
				})
			})
		})
	}

	cli.Lookup(MoviePath, func(handle uint64, err error) {
		if err != nil {
			panic("tivopc: movie missing from NAS: " + err.Error())
		}
		cli.GetAttr(handle, func(size int, err error) {
			fileSize = size
			loop(handle, 0)
		})
	})
}
