package tivopc

import (
	"fmt"

	"hydra/internal/cache"
	"hydra/internal/core"
	"hydra/internal/guid"
	"hydra/internal/mpeg"
	"hydra/internal/netsim"
	"hydra/internal/nfs"
	"hydra/internal/objfile"
)

// ClientKind selects the Video Client implementation (§6.4, Table 4).
type ClientKind int

// Client variants.
const (
	// IdleClient receives nothing; it is the paper's "Idle Client" row.
	IdleClient ClientKind = iota
	// UserspaceClient processes every packet on the host: interrupt,
	// kernel→user copy, software MPEG decode, display blit, and a
	// recording write back to storage.
	UserspaceClient
	// OffloadedClient runs everything on peripherals: NIC → (GPU, Smart
	// Disk) peer DMA, GPU decode, disk-side NFS recording.
	OffloadedClient
)

func (k ClientKind) String() string {
	switch k {
	case IdleClient:
		return "Idle Client"
	case UserspaceClient:
		return "User-space Client"
	case OffloadedClient:
		return "Offloaded Client"
	}
	return "unknown"
}

// ClientHarness drives one client variant and records arrivals.
type ClientHarness struct {
	tb   *Testbed
	kind ClientKind

	Arrivals *ArrivalRecorder

	// Host-decode state (user-space variant).
	dec           *mpeg.Decoder
	FramesDecoded int
	LastChecksum  uint64

	// Offloaded components, for end-to-end verification.
	Streamer *clientStreamerOffcode
	Decoder  *decoderOffcode
	Display  *displayOffcode
	DiskFile *diskFileOffcode

	// deploy tracks the offloaded variant's commit outcome (the other
	// variants never arm it).
	deploy deployOutcome
}

// DeployErr reports how the offloaded client's deployment commit settled
// (always nil for the other variants). Check it after the engine has run.
func (h *ClientHarness) DeployErr() error { return h.deploy.Err() }

// StartClient wires the chosen client variant into the testbed. The
// returned harness exposes arrival times (jitter) and decode progress.
func StartClient(tb *Testbed, kind ClientKind) (*ClientHarness, error) {
	h := &ClientHarness{tb: tb, kind: kind, Arrivals: &ArrivalRecorder{}}
	switch kind {
	case IdleClient:
		// Record arrivals only; no processing. (Used when measuring
		// server-side effects with a quiet client, and for the idle rows.)
		tb.ClientStation.Bind(MediaPort, func(p packet) {
			h.Arrivals.Times = append(h.Arrivals.Times, tb.Eng.Now())
		})
	case UserspaceClient:
		h.runUserspace()
	case OffloadedClient:
		if err := h.runOffloaded(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("tivopc: unknown client kind %d", kind)
	}
	return h, nil
}

type packet = netsim.Packet

// --- User-space client ---
//
// Per-packet path: NIC DMA into a kernel ring buffer (invalidating those
// lines), RX interrupt, kernel protocol processing, copy_to_user, then the
// Streamer/Decoder/Display pipeline in user space. Decoding is real (the
// same mpeg.Decoder), with modeled CPU cycles and an L2-visible working
// set; each packet is also written back to storage through the kernel NFS
// client (the recording path).
func (h *ClientHarness) runUserspace() {
	tb := h.tb
	task := tb.Client.NewTask("tivo-client")
	h.dec = mpeg.NewDecoder()

	rxRing := tb.Client.Alloc(64 << 10)
	userBuf := tb.Client.Alloc(ChunkBytes)
	writeBuf := tb.Client.Alloc(ChunkBytes)
	// Decoder working set: current frame + two references (≈230 kB at
	// QVGA). Its hot loops are L1/L2 resident between frames, so the
	// L2-visible traffic per frame is a small slice of it; the paper's
	// "+12% misses, much of [it] due to the MPEG decoding process" is
	// reproduced by the DMA-fresh payload copies plus this slice.
	cfg := MovieConfig()
	wsBytes := mpeg.DecodeWorkingSetBytes(cfg.W, cfg.H)
	decodeWS := tb.Client.Alloc(wsBytes)
	decodeTouch := 4 << 10 // L2-visible bytes per decoded frame

	nfsCli := nfs.NewClient(tb.Eng, tb.ClientStation, "nas", 5005, 0)
	var recHandle uint64
	nfsCli.Create(RecordPath, func(hd uint64, err error) { recHandle = hd })
	var recOffset uint64
	ringOff := uint64(0)

	tb.ClientStation.Bind(MediaPort, func(p packet) {
		h.Arrivals.Times = append(h.Arrivals.Times, tb.Eng.Now())
		data := p.Payload

		// NIC deposits the packet and raises an interrupt.
		slot := rxRing + ringOff
		ringOff = (ringOff + uint64(len(data))) % (60 << 10)
		tb.ClientNIC.DMAToHost(slot, len(data), nil)
		tb.ClientNIC.InterruptHost(3000, nil)

		// Kernel RX processing + copy to the application.
		task.Syscall(8000, func() {
			task.Copy(cache.Kernel, slot, userBuf, len(data), func() {
				// Streamer extracts the payload; Decoder consumes it.
				frames := h.dec.Feed(data)
				var cycles uint64
				for _, f := range frames {
					cycles += mpeg.DecodeCostCycles(f.W, f.H, mpeg.TypeP)
				}
				if len(frames) > 0 {
					off := uint64(h.FramesDecoded%(wsBytes/decodeTouch)) * uint64(decodeTouch)
					task.TouchRange(cache.User, decodeWS+off, decodeTouch)
				}
				task.Compute(cycles, func() {
					for _, f := range frames {
						h.FramesDecoded++
						h.LastChecksum = frameChecksum(f)
						// Display: blit to the GPU aperture
						// (write-combining: costs cycles, not L2).
						task.Compute(tb.Client.CopyCycles(len(f.Pix)), nil)
					}
				})

				// Recording path: write() the packet to storage.
				task.Copy(cache.Kernel, userBuf, writeBuf, len(data), nil)
				task.Syscall(6000, func() {
					if recHandle != 0 {
						off := recOffset
						recOffset += uint64(len(data))
						tb.ClientNIC.DMAFromHost(writeBuf, len(data), func() {
							nfsCli.Write(recHandle, off, data, func(int, error) {})
						})
					}
				})
			})
		})
	})
}

// --- Offloaded client ---

func clientPullGang() string {
	return gangImport("tivo.Decoder", GUIDDecoder) +
		gangImport("tivo.DiskFile", GUIDDiskFile)
}

// stockClientOffcodes registers the client-side Offcodes (Figure 8's
// layout: Streamer on the NIC ganged with Decoder and the disk-side File;
// Decoder pulled with Display on the GPU).
func stockClientOffcodes(tb *Testbed) error {
	d := tb.ClientDepot
	d.PutFile("/tivo/tivo.Display.odf", []byte(clientODF("tivo.Display", GUIDDisplay, "Display Device", "")))
	d.PutFile("/tivo/tivo.Decoder.odf", []byte(clientODF("tivo.Decoder", GUIDDecoder, "Display Device",
		pullImport("tivo.Display", GUIDDisplay))))
	d.PutFile("/tivo/tivo.DiskFile.odf", []byte(clientODF("tivo.DiskFile", GUIDDiskFile, "Storage Device", "")))
	d.PutFile("/tivo/tivo.ClientStreamer.odf", []byte(clientODF("tivo.ClientStreamer", GUIDClientStreamer,
		"Network Device", clientPullGang())))

	for _, spec := range []struct {
		name string
		g    guid.GUID
		size int
	}{
		{"tivo.Display", GUIDDisplay, 2 << 10},
		{"tivo.Decoder", GUIDDecoder, 12 << 10},
		{"tivo.DiskFile", GUIDDiskFile, 6 << 10},
		{"tivo.ClientStreamer", GUIDClientStreamer, 3 << 10},
	} {
		obj := objfile.Synthesize(spec.name, spec.g, spec.size,
			[]string{"hydra.Heap.Alloc", "hydra.Channel.Write", "hydra.Runtime.GetOffcode"})
		if err := d.RegisterObject(obj); err != nil {
			return err
		}
	}
	return nil
}

func (h *ClientHarness) runOffloaded() error {
	tb := h.tb
	if err := stockClientOffcodes(tb); err != nil {
		return err
	}
	d := tb.ClientDepot
	h.Display = &displayOffcode{tb: tb}
	h.Decoder = &decoderOffcode{tb: tb}
	h.DiskFile = &diskFileOffcode{tb: tb}
	h.Streamer = &clientStreamerOffcode{tb: tb}
	if err := d.RegisterFactory(GUIDDisplay, func() any { return h.Display }); err != nil {
		return err
	}
	if err := d.RegisterFactory(GUIDDecoder, func() any { return h.Decoder }); err != nil {
		return err
	}
	if err := d.RegisterFactory(GUIDDiskFile, func() any { return h.DiskFile }); err != nil {
		return err
	}
	if err := d.RegisterFactory(GUIDClientStreamer, func() any { return h.Streamer }); err != nil {
		return err
	}

	plan := tb.ClientApp.Plan()
	if err := plan.AddRoot("/tivo/tivo.ClientStreamer.odf"); err != nil {
		return err
	}
	settle := h.deploy.arm()
	plan.Commit(func(dep *core.Deployment, err error) {
		settle(dep, err)
		if err != nil {
			return
		}
		// The NIC's RX path hands media packets to the Streamer Offcode.
		tb.ClientStation.Bind(MediaPort, func(p packet) {
			h.Arrivals.Times = append(h.Arrivals.Times, tb.Eng.Now())
			h.Streamer.Packet(p.Payload)
		})
	})
	return nil
}

// VerifyPlacement asserts the Figure 8 layout after an offloaded-client
// deployment: Streamer on the NIC, Decoder+Display on the GPU, File on the
// Smart Disk.
func (h *ClientHarness) VerifyPlacement() error {
	rt := h.tb.ClientRT
	want := map[string]string{
		"tivo.ClientStreamer": "client-nic",
		"tivo.Decoder":        "client-gpu",
		"tivo.Display":        "client-gpu",
		"tivo.DiskFile":       "client-disk",
	}
	for bind, devName := range want {
		handle, err := rt.GetOffcode(bind)
		if err != nil {
			return err
		}
		if handle.Device() == nil {
			return fmt.Errorf("tivopc: %s fell back to host", bind)
		}
		if handle.Device().Name() != devName {
			return fmt.Errorf("tivopc: %s on %s, want %s", bind, handle.Device().Name(), devName)
		}
	}
	return nil
}
