package tivopc

import (
	"reflect"
	"testing"

	"hydra/internal/sim"
)

const testDuration = 30 * sim.Second

func TestMovieGeneration(t *testing.T) {
	m := Movie(100 << 10)
	if len(m) < 100<<10 {
		t.Fatalf("movie = %d bytes", len(m))
	}
	// Cache grows, never shrinks, and prefixes are stable.
	m2 := Movie(50 << 10)
	for i := range m2 {
		if m2[i] != m[i] {
			t.Fatal("movie prefix not stable")
		}
	}
}

func TestSimpleServerJitter(t *testing.T) {
	run, err := RunServerScenario(SimpleServer, 101, testDuration)
	if err != nil {
		t.Fatal(err)
	}
	s := run.JitterSummary()
	t.Logf("simple: median=%.2f mean=%.2f std=%.4f n=%d sent=%d", s.Median, s.Mean, s.StdDev, s.N, run.Sent)
	// Paper Table 2: median 6.99, avg 7.00, std 0.5521.
	if s.Median < 6.4 || s.Median > 7.6 {
		t.Errorf("simple median = %.2f ms, want ≈7", s.Median)
	}
	if s.StdDev < 0.1 || s.StdDev > 1.2 {
		t.Errorf("simple stddev = %.4f ms, want ≈0.55", s.StdDev)
	}
}

func TestSendfileServerJitter(t *testing.T) {
	run, err := RunServerScenario(SendfileServer, 102, testDuration)
	if err != nil {
		t.Fatal(err)
	}
	s := run.JitterSummary()
	t.Logf("sendfile: median=%.2f mean=%.2f std=%.4f n=%d sent=%d", s.Median, s.Mean, s.StdDev, s.N, run.Sent)
	// Paper: median 6.00, avg 5.99, std 0.4720.
	if s.Median < 5.5 || s.Median > 6.5 {
		t.Errorf("sendfile median = %.2f ms, want ≈6", s.Median)
	}
}

func TestOffloadedServerJitter(t *testing.T) {
	run, err := RunServerScenario(OffloadedServer, 103, testDuration)
	if err != nil {
		t.Fatal(err)
	}
	s := run.JitterSummary()
	t.Logf("offloaded: median=%.4f mean=%.4f std=%.4f n=%d sent=%d", s.Median, s.Mean, s.StdDev, s.N, run.Sent)
	// Paper: median 5.00, avg 5.00, std 0.0369.
	if s.Median < 4.95 || s.Median > 5.05 {
		t.Errorf("offloaded median = %.4f ms, want 5.00", s.Median)
	}
	if s.StdDev > 0.1 {
		t.Errorf("offloaded stddev = %.4f ms, want ≈0.037", s.StdDev)
	}
}

func TestServerCPUOrdering(t *testing.T) {
	idle, err := RunServerScenario(0, 104, testDuration)
	if err != nil {
		t.Fatal(err)
	}
	simple, err := RunServerScenario(SimpleServer, 104, testDuration)
	if err != nil {
		t.Fatal(err)
	}
	sendfile, err := RunServerScenario(SendfileServer, 104, testDuration)
	if err != nil {
		t.Fatal(err)
	}
	offl, err := RunServerScenario(OffloadedServer, 104, testDuration)
	if err != nil {
		t.Fatal(err)
	}
	i, s, f, o := idle.CPUSummary().Mean, simple.CPUSummary().Mean, sendfile.CPUSummary().Mean, offl.CPUSummary().Mean
	t.Logf("CPU%%: idle=%.2f simple=%.2f sendfile=%.2f offloaded=%.2f", i, s, f, o)
	// Paper Table 3 ordering: simple > sendfile > offloaded ≈ idle.
	if !(s > f && f > o) {
		t.Errorf("CPU ordering broken: simple=%.2f sendfile=%.2f offloaded=%.2f", s, f, o)
	}
	if o > i*1.15 {
		t.Errorf("offloaded server CPU %.2f%% not ≈ idle %.2f%%", o, i)
	}
	// Figure 10 ordering on kernel miss rates.
	im, sm, fm, om := idle.MeanMissRate(), simple.MeanMissRate(), sendfile.MeanMissRate(), offl.MeanMissRate()
	t.Logf("kernel L2 miss rate: idle=%.4f simple=%.4f sendfile=%.4f offloaded=%.4f (simple/idle=%.3f sendfile/idle=%.3f offl/idle=%.3f)",
		im, sm, fm, om, sm/im, fm/im, om/im)
	if sm <= im {
		t.Errorf("simple server did not raise kernel miss rate: %.4f vs idle %.4f", sm, im)
	}
	if om > im*1.05 {
		t.Errorf("offloaded server raised kernel miss rate: %.4f vs idle %.4f", om, im)
	}
}

func TestClientScenarios(t *testing.T) {
	idle, err := RunClientScenario(IdleClient, 105, testDuration)
	if err != nil {
		t.Fatal(err)
	}
	user, err := RunClientScenario(UserspaceClient, 105, testDuration)
	if err != nil {
		t.Fatal(err)
	}
	offl, err := RunClientScenario(OffloadedClient, 105, testDuration)
	if err != nil {
		t.Fatal(err)
	}
	i, u, o := idle.CPUSummary().Mean, user.CPUSummary().Mean, offl.CPUSummary().Mean
	t.Logf("client CPU%%: idle=%.2f user=%.2f offloaded=%.2f", i, u, o)
	t.Logf("client frames: user=%d offloaded=%d; recorded=%d bytes", user.FramesDecoded, offl.FramesDecoded, offl.Recorded)
	t.Logf("client L2 misses: idle=%d user=%d (+%.1f%%) offloaded=%d (+%.1f%%)",
		idle.L2Misses, user.L2Misses, 100*float64(user.L2Misses-idle.L2Misses)/float64(idle.L2Misses),
		offl.L2Misses, 100*(float64(offl.L2Misses)-float64(idle.L2Misses))/float64(idle.L2Misses))

	// Paper Table 4: user-space ≈ 7.3%, offloaded = idle ≈ 2.9%.
	if u <= i*1.5 {
		t.Errorf("user-space client CPU %.2f%% not clearly above idle %.2f%%", u, i)
	}
	if o > i*1.15 {
		t.Errorf("offloaded client CPU %.2f%% not ≈ idle %.2f%%", o, i)
	}
	if !user.Verified || !offl.Verified {
		t.Error("decode verification failed")
	}
	// §6.4 text: non-offloaded client generates ~12% more L2 misses;
	// offloaded matches idle.
	if user.L2Misses <= idle.L2Misses {
		t.Error("user-space client did not add L2 misses")
	}
	if float64(offl.L2Misses) > float64(idle.L2Misses)*1.05 {
		t.Errorf("offloaded client added L2 misses: %d vs %d", offl.L2Misses, idle.L2Misses)
	}
	// The recording actually landed on the NAS.
	if offl.Recorded == 0 {
		t.Error("offloaded client recorded nothing")
	}
}

func TestOffloadedClientPlacementAndPipeline(t *testing.T) {
	tb := NewTestbed(106, 5*sim.Second)
	client, err := StartClient(tb, OffloadedClient)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StartServer(tb, OffloadedServer, 5*sim.Second); err != nil {
		t.Fatal(err)
	}
	tb.Eng.Run(5 * sim.Second)
	if err := client.VerifyPlacement(); err != nil {
		t.Fatal(err)
	}
	if client.Display.VerifyFail != 0 || client.Display.VerifiedOK == 0 {
		t.Fatalf("frame verification: ok=%d fail=%d", client.Display.VerifiedOK, client.Display.VerifyFail)
	}
	// The recording on the NAS is a prefix of the movie.
	rec, ok := tb.NASStore.Get(RecordPath)
	if !ok || len(rec) == 0 {
		t.Fatal("no recording on NAS")
	}
	movie, _ := tb.NASStore.Get(MoviePath)
	for i := range rec {
		if rec[i] != movie[i] {
			t.Fatalf("recording diverges from movie at byte %d", i)
		}
	}
}

func TestDeterministicScenario(t *testing.T) {
	r1, err := RunServerScenario(SimpleServer, 42, 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunServerScenario(SimpleServer, 42, 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.JitterGaps) != len(r2.JitterGaps) {
		t.Fatal("runs differ in arrivals")
	}
	for i := range r1.JitterGaps {
		if r1.JitterGaps[i] != r2.JitterGaps[i] {
			t.Fatal("runs not deterministic")
		}
	}
}

// --- NIC failover ---

func TestFailoverRecoversOnStandbyNIC(t *testing.T) {
	duration := 20 * sim.Second
	crashAt := 8 * sim.Second
	run, err := RunFailoverScenario(1, duration, CrashPrimaryNIC(crashAt, 0))
	if err != nil {
		t.Fatal(err)
	}
	if run.FinalNIC != StandbyNIC {
		t.Fatalf("tivo.Server on %s, want %s", run.FinalNIC, StandbyNIC)
	}
	if len(run.Recoveries) != 1 {
		t.Fatalf("recoveries = %d", len(run.Recoveries))
	}
	rec := run.Recoveries[0]
	if rec.Device != PrimaryNIC || !rec.Complete() || rec.Err != nil {
		t.Fatalf("recovery = %+v", rec)
	}
	lat := run.DetectionLatencies()
	if len(lat) != 1 || lat[0] <= 0 || lat[0] > 4*FailoverHeartbeat {
		t.Fatalf("detection latencies = %v", lat)
	}
	if rec.MigrationTime() <= 0 || rec.MigrationTime() > sim.Second {
		t.Fatalf("migration time = %v", rec.MigrationTime())
	}
	// The stream went down briefly and came back: post-recovery arrivals
	// exist and pace at the nominal 5 ms period.
	post := run.PostRecoveryJitter()
	if post.N < 100 {
		t.Fatalf("only %d post-recovery gaps", post.N)
	}
	if post.Median < 4 || post.Median > 6 {
		t.Fatalf("post-recovery median gap = %.2f ms, want ≈5", post.Median)
	}
	if run.ChunksLost() == 0 {
		t.Fatal("a crash mid-stream should lose some chunks")
	}
	if run.Availability() < 0.9 || run.Availability() > 1.0 {
		t.Fatalf("availability = %.3f", run.Availability())
	}
	// The File Offcode resumed from its checkpoint: total delivered plus
	// the outage loss covers the nominal stream (no restart from zero).
	if run.Delivered()+run.ChunksLost() < run.Expected-10 {
		t.Fatalf("delivered %d + lost %d ≪ expected %d; stream did not resume",
			run.Delivered(), run.ChunksLost(), run.Expected)
	}
}

func TestFailoverBaselineWithoutFaults(t *testing.T) {
	run, err := RunFailoverScenario(1, 10*sim.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.FinalNIC != PrimaryNIC {
		t.Fatalf("fault-free run on %s, want %s", run.FinalNIC, PrimaryNIC)
	}
	if len(run.Recoveries) != 0 {
		t.Fatalf("fault-free run recovered %d times", len(run.Recoveries))
	}
	if run.ChunksLost() != 0 {
		t.Fatalf("fault-free run lost %d chunks", run.ChunksLost())
	}
}

func TestFailoverDeterministic(t *testing.T) {
	duration := 10 * sim.Second
	sched := CrashPrimaryNIC(4*sim.Second, 0)
	run1, err := RunFailoverScenario(3, duration, sched)
	if err != nil {
		t.Fatal(err)
	}
	run2, err := RunFailoverScenario(3, duration, sched)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(run1.Arrivals, run2.Arrivals) {
		t.Fatal("fixed-seed failover arrivals differ across repeats")
	}
	if !reflect.DeepEqual(run1.Faults, run2.Faults) {
		t.Fatal("fixed-seed fault logs differ")
	}
	if len(run1.Recoveries) != len(run2.Recoveries) {
		t.Fatal("recovery counts differ")
	}
	for i := range run1.Recoveries {
		a, b := run1.Recoveries[i], run2.Recoveries[i]
		if a.DetectedAt != b.DetectedAt || a.MigrationEnd != b.MigrationEnd {
			t.Fatalf("recovery %d timing differs: %+v vs %+v", i, a, b)
		}
	}
}

// --- Multi-tenant sessions ---

// The offloaded pipeline runs under dedicated application sessions, and a
// competing background tenant in its own session must not perturb the
// device-timer-paced stream, while its teardown reclaims everything.
func TestContendedScenarioSessionIsolation(t *testing.T) {
	run, err := RunContendedScenario(107, 15*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	s := run.Stream.JitterSummary()
	t.Logf("contended: median=%.4f std=%.4f bg-iterations=%d reclaimed=%d",
		s.Median, s.StdDev, run.BackgroundIterations, run.ReclaimedBytes)
	// The tenant really ran...
	if run.BackgroundIterations < 1000 {
		t.Fatalf("background tenant ran %d periods", run.BackgroundIterations)
	}
	// ...but the stream still paces at the offloaded server's device-timer
	// jitter level (Table 2: σ ≈ 0.037 ms).
	if s.Median < 4.95 || s.Median > 5.05 {
		t.Errorf("contended median = %.4f ms, want 5.00", s.Median)
	}
	if s.StdDev > 0.1 {
		t.Errorf("contended stddev = %.4f ms; background tenant broke isolation", s.StdDev)
	}
	// Closing the background session reclaimed its pin plus its Offcode's
	// OOB ring.
	if run.ReclaimedBytes < BackgroundPinBytes {
		t.Errorf("teardown reclaimed %d B, want ≥ %d", run.ReclaimedBytes, BackgroundPinBytes)
	}
}

// The streaming service's Offcodes are owned by the ServerApp session.
func TestOffloadedServerRunsInItsSession(t *testing.T) {
	tb := NewTestbed(108, 5*sim.Second)
	if _, err := StartServer(tb, OffloadedServer, 5*sim.Second); err != nil {
		t.Fatal(err)
	}
	tb.Eng.Run(5 * sim.Second)
	for _, bind := range []string{"tivo.Server", "tivo.File", "tivo.Broadcast"} {
		h, err := tb.ServerRT.GetOffcode(bind)
		if err != nil {
			t.Fatal(err)
		}
		if h.App() != tb.ServerApp {
			t.Fatalf("%s owned by %v, want %s session", bind, h.App(), ServerAppName)
		}
	}
	if got := len(tb.ServerApp.Offcodes()); got != 3 {
		t.Fatalf("session owns %d offcodes", got)
	}
	if len(tb.BackgroundApp.Offcodes()) != 0 {
		t.Fatal("background session owns offcodes it never deployed")
	}
}
