package tivopc

import (
	"fmt"

	"hydra/internal/core"
	"hydra/internal/device"
	"hydra/internal/faults"
	"hydra/internal/sim"
	"hydra/internal/stats"
	"hydra/internal/testbed"
)

// NIC failover scenario: the §6.4 world with a standby programmable NIC on
// the Video Server and the runtime health monitor watching the server's
// devices. A fault schedule crashes the primary NIC mid-stream; the monitor
// detects the silence, and the runtime migrates the Server/File/Broadcast
// Offcodes onto the standby NIC with the File's stream offset carried over,
// so the client's stream resumes mid-movie after a short outage.

// Server NIC names in the failover topology.
const (
	PrimaryNIC = "server-nic"
	StandbyNIC = "server-nic2"
)

// FailoverHeartbeat is the monitor probe interval used by the scenario.
const FailoverHeartbeat = 10 * sim.Millisecond

// FailoverSpec is SystemSpec plus a standby NIC and a health monitor on the
// Video Server, with the given fault schedule armed.
func FailoverSpec(runFor sim.Time, sched faults.Schedule) testbed.Spec {
	spec := SystemSpec(runFor)
	spec.Name = "tivopc-failover"
	for i := range spec.Hosts {
		if spec.Hosts[i].Name == "server" {
			spec.Hosts[i].Devices = append(spec.Hosts[i].Devices, device.XScaleNIC(StandbyNIC))
			spec.Hosts[i].Monitor = &core.MonitorConfig{Heartbeat: FailoverHeartbeat}
		}
	}
	spec.Faults = sched
	return spec
}

// CrashPrimaryNIC is the canonical single-fault schedule: the primary
// server NIC dies at the given time (and stays dead unless restartAfter is
// positive).
func CrashPrimaryNIC(at, restartAfter sim.Time) faults.Schedule {
	return faults.Schedule{{At: at, Kind: faults.DeviceCrash, Device: PrimaryNIC, Duration: restartAfter}}
}

// FailoverRun is the measured outcome of one NIC-failover scenario.
type FailoverRun struct {
	// Arrivals are client-side packet arrival times.
	Arrivals []sim.Time
	// Sent counts chunks the streamer transmitted.
	Sent int
	// Expected is the chunk count a fault-free run would deliver at the
	// nominal rate (one per ChunkPeriod).
	Expected int
	// Faults is the injector's log (what actually struck, when).
	Faults []faults.Record
	// Recoveries is the server runtime's recovery history.
	Recoveries []*core.Recovery
	// FinalNIC is where tivo.Server ended up.
	FinalNIC string
}

// Delivered reports chunks that reached the client.
func (r *FailoverRun) Delivered() int { return len(r.Arrivals) }

// Availability is the delivered fraction of the nominal stream.
func (r *FailoverRun) Availability() float64 {
	if r.Expected == 0 {
		return 0
	}
	return float64(r.Delivered()) / float64(r.Expected)
}

// Gaps returns inter-arrival times in milliseconds.
func (r *FailoverRun) Gaps() []float64 {
	rec := ArrivalRecorder{Times: r.Arrivals}
	return rec.Gaps()
}

// GapsAfter returns inter-arrival gaps (ms) between arrivals at or after t
// — the post-recovery jitter distribution when t is the last MigrationEnd.
func (r *FailoverRun) GapsAfter(t sim.Time) []float64 {
	var times []sim.Time
	for _, at := range r.Arrivals {
		if at >= t {
			times = append(times, at)
		}
	}
	rec := ArrivalRecorder{Times: times}
	return rec.Gaps()
}

// PostRecoveryJitter summarizes the stream's jitter after the last
// completed recovery (the whole run when nothing failed).
func (r *FailoverRun) PostRecoveryJitter() stats.Summary {
	var last sim.Time
	for _, rec := range r.Recoveries {
		if rec.Complete() && rec.MigrationEnd > last {
			last = rec.MigrationEnd
		}
	}
	return stats.Summarize(r.GapsAfter(last))
}

// DetectionLatencies pairs each recovery with the device fault that caused
// it: time from injection to the monitor's declaration.
func (r *FailoverRun) DetectionLatencies() []sim.Time {
	// Faults and recoveries are both chronological; match each recovery to
	// the most recent preceding crash/hang of its device.
	var out []sim.Time
	for _, rec := range r.Recoveries {
		var faultAt sim.Time = -1
		for _, f := range r.Faults {
			if f.Target == rec.Device && f.At <= rec.DetectedAt &&
				(f.Kind == faults.DeviceCrash || f.Kind == faults.DeviceHang) {
				faultAt = f.At
			}
		}
		if faultAt >= 0 {
			out = append(out, rec.DetectedAt-faultAt)
		}
	}
	return out
}

// ChunksLost estimates stream chunks that never arrived because of
// outages: the sum, over inter-arrival gaps longer than twice the nominal
// period, of the whole periods the gap spans.
func (r *FailoverRun) ChunksLost() int {
	lost := 0
	nominal := ChunkPeriod.Milliseconds()
	for _, gap := range r.Gaps() {
		if gap > 2*nominal {
			lost += int(gap/nominal) - 1
		}
	}
	return lost
}

// RunFailoverScenario streams the §6.4 offloaded server under the given
// fault schedule and reports what the client saw and how the runtime
// recovered. An empty schedule is the fault-free baseline.
func RunFailoverScenario(seed int64, duration sim.Time, sched faults.Schedule) (*FailoverRun, error) {
	sys, err := testbed.New(seed, FailoverSpec(duration, sched))
	if err != nil {
		return nil, err
	}
	tb := fromSystem(sys)

	client, err := StartClient(tb, IdleClient)
	if err != nil {
		return nil, err
	}
	harness, err := StartServer(tb, OffloadedServer, duration)
	if err != nil {
		return nil, err
	}
	tb.Eng.Run(duration)

	if err := harness.DeployErr(); err != nil {
		return nil, err
	}
	run := &FailoverRun{
		Arrivals:   client.Arrivals.Times,
		Sent:       harness.TotalSent(),
		Expected:   int(duration / ChunkPeriod),
		Recoveries: tb.ServerRT.Recoveries(),
	}
	if sys.Injector != nil {
		run.Faults = sys.Injector.Log()
	}
	h, err := tb.ServerRT.GetOffcode("tivo.Server")
	if err != nil {
		return nil, fmt.Errorf("tivopc: failover lost the streamer: %w", err)
	}
	if h.Device() == nil {
		return nil, fmt.Errorf("tivopc: tivo.Server ended on the host")
	}
	if h.App() != tb.ServerApp {
		return nil, fmt.Errorf("tivopc: migration moved tivo.Server out of the %s session", ServerAppName)
	}
	run.FinalNIC = h.Device().Name()
	if run.Delivered() < 10 {
		return nil, fmt.Errorf("tivopc: failover run delivered only %d chunks", run.Delivered())
	}
	for _, rec := range run.Recoveries {
		if rec.Err != nil {
			return nil, fmt.Errorf("tivopc: recovery for %s failed: %w", rec.Device, rec.Err)
		}
	}
	return run, nil
}
