package faults

import (
	"reflect"
	"strings"
	"testing"

	"hydra/internal/bus"
	"hydra/internal/device"
	"hydra/internal/hostos"
	"hydra/internal/sim"
)

// world is a minimal Targets implementation over one host.
type world struct {
	eng  *sim.Engine
	host *hostos.Machine
	b    *bus.Bus
	devs map[string]*device.Device
}

func (w *world) Device(name string) *device.Device { return w.devs[name] }
func (w *world) Bus(host string) *bus.Bus {
	if host == "h0" {
		return w.b
	}
	return nil
}

func newWorld(seed int64) *world {
	eng := sim.NewEngine(seed)
	host := hostos.New(eng, "h0", hostos.PentiumIV())
	b := bus.New(eng, bus.DefaultConfig())
	w := &world{eng: eng, host: host, b: b, devs: map[string]*device.Device{}}
	w.devs["nic0"] = device.New(eng, host, b, device.XScaleNIC("nic0"))
	w.devs["nic1"] = device.New(eng, host, b, device.XScaleNIC("nic1"))
	return w
}

func TestArmAppliesScheduleInOrder(t *testing.T) {
	w := newWorld(1)
	in := NewInjector(w.eng)
	sched := Schedule{
		{At: 30 * sim.Millisecond, Kind: BusDegrade, Host: "h0", Factor: 3, Duration: 10 * sim.Millisecond},
		{At: 10 * sim.Millisecond, Kind: DeviceCrash, Device: "nic0", Duration: 20 * sim.Millisecond},
		{At: 20 * sim.Millisecond, Kind: DeviceHang, Device: "nic1"},
		{At: 50 * sim.Millisecond, Kind: DeviceRestart, Device: "nic1"},
		{At: 60 * sim.Millisecond, Kind: BusOutage, Host: "h0", Duration: sim.Millisecond},
	}
	if err := in.Arm(sched, w); err != nil {
		t.Fatal(err)
	}

	w.eng.Run(15 * sim.Millisecond)
	if w.devs["nic0"].Health() != device.HealthCrashed {
		t.Fatal("crash not applied")
	}
	w.eng.Run(25 * sim.Millisecond)
	if w.devs["nic1"].Health() != device.HealthHung {
		t.Fatal("hang not applied")
	}
	w.eng.Run(35 * sim.Millisecond)
	if !w.devs["nic0"].Healthy() {
		t.Fatal("bounded crash did not auto-restart")
	}
	if w.b.Slowdown() != 3 {
		t.Fatalf("slowdown = %v", w.b.Slowdown())
	}
	w.eng.Run(45 * sim.Millisecond)
	if w.b.Slowdown() != 1 {
		t.Fatal("bounded degradation did not restore")
	}
	w.eng.RunAll()
	if !w.devs["nic1"].Healthy() {
		t.Fatal("explicit restart not applied")
	}
	if w.b.Outages() != 1 {
		t.Fatal("outage not applied")
	}

	log := in.Log()
	kinds := make([]Kind, len(log))
	for i, r := range log {
		kinds[i] = r.Kind
	}
	// The bounded crash's auto-restart appears in the log too, at 30 ms —
	// armed before the degradation entry, so it fires first.
	want := []Kind{DeviceCrash, DeviceHang, DeviceRestart, BusDegrade, DeviceRestart, BusOutage}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("log kinds = %v, want %v", kinds, want)
	}
	for i := 1; i < len(log); i++ {
		if log[i].At < log[i-1].At {
			t.Fatalf("log out of order: %v", log)
		}
	}
}

func TestArmValidatesNames(t *testing.T) {
	w := newWorld(1)
	in := NewInjector(w.eng)
	cases := []Entry{
		{Kind: DeviceCrash, Device: "ghost"},
		{Kind: BusDegrade, Host: "ghost", Factor: 2},
		{Kind: BusDegrade, Host: "h0", Factor: 0.5},
		{Kind: BusOutage, Host: "h0"},
		{Kind: Kind(99)},
	}
	for i, e := range cases {
		if err := in.Arm(Schedule{e}, w); err == nil {
			t.Errorf("case %d (%v): invalid entry armed", i, e)
		}
	}
	if err := in.Arm(Schedule{{Kind: DeviceCrash, Device: "ghost"}}, w); err == nil ||
		!strings.Contains(err.Error(), "ghost") {
		t.Fatal("error does not name the unknown target")
	}
}

func TestRandomCrashScheduleDeterministic(t *testing.T) {
	gen := func(seed int64) Schedule {
		w := newWorld(seed)
		in := NewInjector(w.eng)
		return in.RandomCrashSchedule([]string{"nic0", "nic1"}, 10*sim.Second, 1.0, 200*sim.Millisecond)
	}
	a, b := gen(42), gen(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal seeds produced different schedules")
	}
	c := gen(43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	if len(a) == 0 {
		t.Fatal("rate 1/s over 10 s produced no faults")
	}
	for i, e := range a {
		if e.At < 0 || e.At >= 10*sim.Second {
			t.Fatalf("entry %d outside [0, duration): %v", i, e)
		}
		if e.Kind != DeviceCrash || e.Duration != 200*sim.Millisecond {
			t.Fatalf("entry %d malformed: %v", i, e)
		}
		if i > 0 && e.At < a[i-1].At {
			t.Fatalf("schedule not time-ordered at %d", i)
		}
	}
	if s := NewInjector(newWorld(1).eng).RandomCrashSchedule(nil, sim.Second, 1, 0); s != nil {
		t.Fatal("nil device list should yield a nil schedule")
	}
}

func TestInjectorStreamIsolated(t *testing.T) {
	// Creating an injector must not perturb the engine's main stream.
	draw := func(makeInjector bool) int64 {
		eng := sim.NewEngine(7)
		if makeInjector {
			NewInjector(eng)
		}
		return eng.Rand().Int63()
	}
	if draw(true) != draw(false) {
		t.Fatal("injector perturbed the engine's shared stream")
	}
}
