// Package faults is the deterministic fault injector: it replays declarative
// fault schedules — device crashes, firmware hangs, restarts, bus
// degradation and outages — against a running simulation, driven entirely by
// the engine's virtual clock and a private seeded random stream.
//
// The determinism contract extends to failures: a fixed seed plus a fixed
// schedule produces a bit-identical run, including every fault, every
// detection and every recovery. Random schedules (RandomCrashSchedule) are
// materialized up front from the injector's Engine.NewRand stream, so two
// injectors on equal-seed engines generate identical fault histories and
// replicas in a testbed.Sweep never share RNG state.
//
// The injector only throws the switches; reacting to them is the runtime's
// job (see internal/core's health monitor and Offcode migration).
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"hydra/internal/bus"
	"hydra/internal/device"
	"hydra/internal/sim"
)

// Kind is a fault type.
type Kind int

// Fault kinds.
const (
	// DeviceCrash kills a device; local memory is lost. With a Duration,
	// the device restarts (power-on reset) that long after the crash.
	DeviceCrash Kind = iota
	// DeviceHang wedges a device's firmware; memory survives. With a
	// Duration, the device un-wedges that long after the hang.
	DeviceHang
	// DeviceRestart restores a previously crashed or hung device.
	DeviceRestart
	// BusDegrade multiplies a host bus's wire time by Factor. With a
	// Duration, full speed returns that long after the degradation.
	BusDegrade
	// BusOutage blocks a host bus entirely for Duration.
	BusOutage
)

func (k Kind) String() string {
	switch k {
	case DeviceCrash:
		return "device-crash"
	case DeviceHang:
		return "device-hang"
	case DeviceRestart:
		return "device-restart"
	case BusDegrade:
		return "bus-degrade"
	case BusOutage:
		return "bus-outage"
	}
	return "invalid"
}

// Entry is one declarative fault. Device faults name a device; bus faults
// name the host whose interconnect degrades.
type Entry struct {
	// At is the virtual time the fault strikes.
	At sim.Time
	// Kind selects the fault.
	Kind Kind
	// Device names the target device (device faults).
	Device string
	// Host names the host whose bus is targeted (bus faults).
	Host string
	// Factor is the BusDegrade wire-time multiplier (≥ 1).
	Factor float64
	// Duration bounds the fault where the Kind supports it; see the Kind
	// constants. Zero means the fault persists until a later entry undoes it.
	Duration sim.Time
}

func (e Entry) String() string {
	target := e.Device
	if target == "" {
		target = e.Host
	}
	return fmt.Sprintf("%v@%v(%s)", e.Kind, e.At, target)
}

// Schedule is a replayable fault script. Entries may be listed in any
// order; Arm applies them in (At, declaration-index) order.
type Schedule []Entry

// Targets resolves the names a Schedule uses to live components.
// testbed.System satisfies it.
type Targets interface {
	// Device returns the named device, or nil.
	Device(name string) *device.Device
	// Bus returns the named host's I/O interconnect, or nil.
	Bus(host string) *bus.Bus
}

// Record is one fault the injector actually applied.
type Record struct {
	At     sim.Time
	Kind   Kind
	Target string
}

// Injector replays fault schedules on an engine.
type Injector struct {
	eng *sim.Engine
	rng *rand.Rand
	log []Record
}

// NewInjector creates an injector with its own private random stream.
func NewInjector(eng *sim.Engine) *Injector {
	return &Injector{eng: eng, rng: eng.NewRand(0x6661756c74 /* "fault" */)}
}

// Arm validates the schedule against targets and schedules every entry
// (plus the implied restores for bounded faults). Validation is eager so a
// typo in a device name fails at build time, not mid-run.
func (in *Injector) Arm(sched Schedule, t Targets) error {
	ordered := make([]Entry, len(sched))
	copy(ordered, sched)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].At < ordered[j].At })
	for _, e := range ordered {
		if err := in.armEntry(e, t); err != nil {
			return err
		}
	}
	return nil
}

func (in *Injector) armEntry(e Entry, t Targets) error {
	switch e.Kind {
	case DeviceCrash, DeviceHang, DeviceRestart:
		d := t.Device(e.Device)
		if d == nil {
			return fmt.Errorf("faults: %v targets unknown device %q", e.Kind, e.Device)
		}
		switch e.Kind {
		case DeviceCrash:
			in.CrashDevice(e.At, d)
			if e.Duration > 0 {
				in.RestartDevice(e.At+e.Duration, d)
			}
		case DeviceHang:
			in.HangDevice(e.At, d)
			if e.Duration > 0 {
				in.RestartDevice(e.At+e.Duration, d)
			}
		case DeviceRestart:
			in.RestartDevice(e.At, d)
		}
	case BusDegrade:
		b := t.Bus(e.Host)
		if b == nil {
			return fmt.Errorf("faults: %v targets unknown host %q", e.Kind, e.Host)
		}
		if e.Factor < 1 {
			return fmt.Errorf("faults: %v factor %v < 1", e.Kind, e.Factor)
		}
		in.DegradeBus(e.At, e.Host, b, e.Factor, e.Duration)
	case BusOutage:
		b := t.Bus(e.Host)
		if b == nil {
			return fmt.Errorf("faults: %v targets unknown host %q", e.Kind, e.Host)
		}
		if e.Duration <= 0 {
			return fmt.Errorf("faults: %v needs a positive duration", e.Kind)
		}
		in.BusOutage(e.At, e.Host, b, e.Duration)
	default:
		return fmt.Errorf("faults: unknown kind %d", e.Kind)
	}
	return nil
}

// at schedules fn at absolute virtual time t (clamped to now).
func (in *Injector) at(t sim.Time, fn func()) {
	in.eng.At(t, fn)
}

func (in *Injector) record(k Kind, target string) {
	in.log = append(in.log, Record{At: in.eng.Now(), Kind: k, Target: target})
}

// CrashDevice kills d at virtual time at.
func (in *Injector) CrashDevice(at sim.Time, d *device.Device) {
	in.at(at, func() {
		in.record(DeviceCrash, d.Name())
		d.Crash()
	})
}

// HangDevice wedges d's firmware at virtual time at.
func (in *Injector) HangDevice(at sim.Time, d *device.Device) {
	in.at(at, func() {
		in.record(DeviceHang, d.Name())
		d.Hang()
	})
}

// RestartDevice restores d at virtual time at.
func (in *Injector) RestartDevice(at sim.Time, d *device.Device) {
	in.at(at, func() {
		in.record(DeviceRestart, d.Name())
		d.Restore()
	})
}

// DegradeBus multiplies b's wire time by factor at virtual time at; with a
// positive duration, full speed returns afterwards.
func (in *Injector) DegradeBus(at sim.Time, host string, b *bus.Bus, factor float64, duration sim.Time) {
	in.at(at, func() {
		in.record(BusDegrade, host)
		b.SetSlowdown(factor)
	})
	if duration > 0 {
		in.at(at+duration, func() { b.SetSlowdown(1) })
	}
}

// BusOutage blocks b for duration starting at virtual time at.
func (in *Injector) BusOutage(at sim.Time, host string, b *bus.Bus, duration sim.Time) {
	in.at(at, func() {
		in.record(BusOutage, host)
		b.Outage(duration)
	})
}

// Log returns the faults applied so far, in application order.
func (in *Injector) Log() []Record {
	return append([]Record(nil), in.log...)
}

// RandomCrashSchedule draws a crash/restart script over the named devices:
// crash arrivals are a Poisson process at rate faults per simulated second
// over [0, duration), each picking a uniformly random device and restarting
// it restartAfter later. The script derives entirely from the injector's
// private stream, so equal seeds give equal schedules. Arrivals whose
// restart would overlap the next crash of the same device are kept — the
// device model makes double-crash a no-op — but the rate should normally be
// chosen so crashes are sparse relative to restartAfter.
func (in *Injector) RandomCrashSchedule(devices []string, duration sim.Time, rate float64, restartAfter sim.Time) Schedule {
	if len(devices) == 0 || rate <= 0 {
		return nil
	}
	var sched Schedule
	t := sim.Time(0)
	for {
		gap := sim.Seconds(in.rng.ExpFloat64() / rate)
		t += gap
		if t >= duration {
			return sched
		}
		sched = append(sched, Entry{
			At:       t,
			Kind:     DeviceCrash,
			Device:   devices[in.rng.Intn(len(devices))],
			Duration: restartAfter,
		})
	}
}
