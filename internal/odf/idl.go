package odf

import (
	"encoding/xml"
	"fmt"
	"strings"

	"hydra/internal/guid"
)

// ParamType enumerates the types the invocation codec can marshal.
type ParamType string

// Supported parameter types.
const (
	TypeBool    ParamType = "bool"
	TypeInt64   ParamType = "int64"
	TypeUint64  ParamType = "uint64"
	TypeFloat64 ParamType = "float64"
	TypeString  ParamType = "string"
	TypeBytes   ParamType = "bytes"
)

// ValidParamType reports whether t is marshalable.
func ValidParamType(t ParamType) bool {
	switch t {
	case TypeBool, TypeInt64, TypeUint64, TypeFloat64, TypeString, TypeBytes:
		return true
	}
	return false
}

// Param is one named, typed method parameter.
type Param struct {
	Name string
	Type ParamType
}

// Method is one operation on an Offcode interface.
type Method struct {
	Name string
	Ins  []Param
	Outs []Param
}

// Interface is a parsed interface definition — the reproduction's
// equivalent of the WSDL documents ODFs include. Every interface is
// "uniquely identified by a GUID" (§3.1).
type Interface struct {
	Name    string
	GUID    guid.GUID
	Methods []Method
}

// Method looks up a method by name.
func (i *Interface) Method(name string) (*Method, bool) {
	for k := range i.Methods {
		if i.Methods[k].Name == name {
			return &i.Methods[k], true
		}
	}
	return nil, false
}

type xmlInterface struct {
	XMLName xml.Name    `xml:"interface"`
	Name    string      `xml:"name,attr"`
	GUID    string      `xml:"guid,attr"`
	Methods []xmlMethod `xml:"method"`
}

type xmlMethod struct {
	Name string     `xml:"name,attr"`
	Ins  []xmlParam `xml:"in"`
	Outs []xmlParam `xml:"out"`
}

type xmlParam struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr"`
}

// ParseInterface decodes and validates one interface definition.
func ParseInterface(data []byte) (*Interface, error) {
	var x xmlInterface
	if err := xml.Unmarshal(data, &x); err != nil {
		return nil, fmt.Errorf("odf: interface: %w", err)
	}
	iface := &Interface{Name: strings.TrimSpace(x.Name)}
	if iface.Name == "" {
		return nil, fmt.Errorf("odf: interface without name")
	}
	g, err := guid.Parse(strings.TrimSpace(x.GUID))
	if err != nil {
		return nil, fmt.Errorf("odf: interface %s: %w", iface.Name, err)
	}
	iface.GUID = g
	seen := make(map[string]bool)
	for _, m := range x.Methods {
		name := strings.TrimSpace(m.Name)
		if name == "" {
			return nil, fmt.Errorf("odf: interface %s: unnamed method", iface.Name)
		}
		if seen[name] {
			return nil, fmt.Errorf("odf: interface %s: duplicate method %s", iface.Name, name)
		}
		seen[name] = true
		method := Method{Name: name}
		for _, p := range m.Ins {
			param, err := parseParam(iface.Name, name, p)
			if err != nil {
				return nil, err
			}
			method.Ins = append(method.Ins, param)
		}
		for _, p := range m.Outs {
			param, err := parseParam(iface.Name, name, p)
			if err != nil {
				return nil, err
			}
			method.Outs = append(method.Outs, param)
		}
		iface.Methods = append(iface.Methods, method)
	}
	return iface, nil
}

func parseParam(iface, method string, p xmlParam) (Param, error) {
	t := ParamType(strings.TrimSpace(p.Type))
	if !ValidParamType(t) {
		return Param{}, fmt.Errorf("odf: %s.%s: unsupported type %q", iface, method, p.Type)
	}
	return Param{Name: strings.TrimSpace(p.Name), Type: t}, nil
}

// EncodeInterface renders an interface definition to XML.
func EncodeInterface(i *Interface) []byte {
	x := xmlInterface{Name: i.Name, GUID: i.GUID.String()}
	for _, m := range i.Methods {
		xm := xmlMethod{Name: m.Name}
		for _, p := range m.Ins {
			xm.Ins = append(xm.Ins, xmlParam{Name: p.Name, Type: string(p.Type)})
		}
		for _, p := range m.Outs {
			xm.Outs = append(xm.Outs, xmlParam{Name: p.Name, Type: string(p.Type)})
		}
		x.Methods = append(x.Methods, xm)
	}
	out, err := xml.MarshalIndent(&x, "", "  ")
	if err != nil {
		panic(err)
	}
	return out
}
