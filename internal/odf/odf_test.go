package odf

import (
	"strings"
	"testing"
)

// sampleODF mirrors the paper's Figure 4 (cleaned up to well-formed XML).
const sampleODF = `
<offcode>
  <package>
    <bindname>hydra.net.utils.Socket</bindname>
    <GUID>7070714</GUID>
    <interface>
      <include>/offcodes/socket.wsdl</include>
    </interface>
  </package>
  <sw-env>
    <import>
      <file>/offcodes/checksum.xdf</file>
      <bindname>hydra.net.utils.Checksum</bindname>
      <reference type="Pull" pri="0">
        <GUID>6060843</GUID>
      </reference>
    </import>
  </sw-env>
  <targets>
    <device-class id="0x0001">
      <name>Network Device</name>
      <bus>pci</bus>
      <mac>ethernet</mac>
      <vendor>3COM</vendor>
    </device-class>
  </targets>
</offcode>`

func TestParseFigure4(t *testing.T) {
	o, err := Parse([]byte(sampleODF))
	if err != nil {
		t.Fatal(err)
	}
	if o.BindName != "hydra.net.utils.Socket" {
		t.Fatalf("bindname = %q", o.BindName)
	}
	if o.GUID != 7070714 {
		t.Fatalf("guid = %v", o.GUID)
	}
	if len(o.InterfaceFiles) != 1 || o.InterfaceFiles[0] != "/offcodes/socket.wsdl" {
		t.Fatalf("interfaces = %v", o.InterfaceFiles)
	}
	if len(o.Imports) != 1 {
		t.Fatalf("imports = %+v", o.Imports)
	}
	imp := o.Imports[0]
	if imp.Type != Pull || imp.GUID != 6060843 || imp.BindName != "hydra.net.utils.Checksum" {
		t.Fatalf("import = %+v", imp)
	}
	if len(o.Targets) != 1 {
		t.Fatalf("targets = %+v", o.Targets)
	}
	dc := o.Targets[0]
	if dc.ID != 1 || dc.Name != "Network Device" || dc.Bus != "pci" ||
		dc.MAC != "ethernet" || dc.Vendor != "3COM" {
		t.Fatalf("device class = %+v", dc)
	}
}

func TestParseConstraintTypes(t *testing.T) {
	cases := map[string]ConstraintType{
		"":               Link,
		"Link":           Link,
		"pull":           Pull,
		"Gang":           Gang,
		"AsymmetricGang": AsymmetricGang,
		"gangto":         AsymmetricGang,
	}
	for text, want := range cases {
		got, err := ParseConstraintType(text)
		if err != nil || got != want {
			t.Errorf("ParseConstraintType(%q) = %v, %v", text, got, err)
		}
	}
	if _, err := ParseConstraintType("banana"); err == nil {
		t.Error("unknown constraint type accepted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"not xml": `<offcode><package>`,
		"no bindname": `<offcode><package><GUID>1</GUID></package>
			<targets><device-class id="1"><name>x</name></device-class></targets></offcode>`,
		"bad guid": `<offcode><package><bindname>a</bindname><GUID>zero</GUID></package>
			<targets><device-class id="1"><name>x</name></device-class></targets></offcode>`,
		"no targets": `<offcode><package><bindname>a</bindname><GUID>5</GUID></package></offcode>`,
		"bad ref type": `<offcode><package><bindname>a</bindname><GUID>5</GUID></package>
			<sw-env><import><bindname>b</bindname><reference type="weird"><GUID>6</GUID></reference></import></sw-env>
			<targets><device-class id="1"><name>x</name></device-class></targets></offcode>`,
		"import without identity": `<offcode><package><bindname>a</bindname><GUID>5</GUID></package>
			<sw-env><import><reference type="Pull"></reference></import></sw-env>
			<targets><device-class id="1"><name>x</name></device-class></targets></offcode>`,
		"bad class id": `<offcode><package><bindname>a</bindname><GUID>5</GUID></package>
			<targets><device-class id="xyz"><name>x</name></device-class></targets></offcode>`,
		"bad priority": `<offcode><package><bindname>a</bindname><GUID>5</GUID></package>
			<sw-env><import><bindname>b</bindname><reference type="Pull" pri="NaN"><GUID>6</GUID></reference></import></sw-env>
			<targets><device-class id="1"><name>x</name></device-class></targets></offcode>`,
	}
	for name, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: parse succeeded", name)
		}
	}
}

func TestHostFallbackOnly(t *testing.T) {
	doc := `<offcode><package><bindname>gui</bindname><GUID>9</GUID></package>
		<targets><host-fallback>true</host-fallback></targets></offcode>`
	o, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !o.HostFallback || len(o.Targets) != 0 {
		t.Fatalf("odf = %+v", o)
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	o, err := Parse([]byte(sampleODF))
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Parse(o.Encode())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, o.Encode())
	}
	if o2.BindName != o.BindName || o2.GUID != o.GUID || len(o2.Imports) != len(o.Imports) ||
		len(o2.Targets) != len(o.Targets) {
		t.Fatalf("round trip changed content: %+v vs %+v", o2, o)
	}
	if o2.Imports[0].Type != Pull {
		t.Fatalf("import type lost: %v", o2.Imports[0].Type)
	}
	if o2.Targets[0].ID != 1 {
		t.Fatalf("target id lost: %v", o2.Targets[0].ID)
	}
}

func TestToDeviceClass(t *testing.T) {
	dc := DeviceClass{ID: 2, Name: "Storage Device", Bus: "pci"}
	c := dc.ToDeviceClass()
	if c.ID != 2 || c.Name != "Storage Device" || c.Bus != "pci" {
		t.Fatalf("converted = %+v", c)
	}
}

const sampleIDL = `
<interface name="IChecksum" guid="0x2001">
  <method name="Compute">
    <in name="data" type="bytes"/>
    <out name="sum" type="uint64"/>
  </method>
  <method name="Reset"/>
</interface>`

func TestParseInterface(t *testing.T) {
	i, err := ParseInterface([]byte(sampleIDL))
	if err != nil {
		t.Fatal(err)
	}
	if i.Name != "IChecksum" || i.GUID != 0x2001 {
		t.Fatalf("iface = %+v", i)
	}
	m, ok := i.Method("Compute")
	if !ok {
		t.Fatal("Compute missing")
	}
	if len(m.Ins) != 1 || m.Ins[0].Type != TypeBytes {
		t.Fatalf("ins = %+v", m.Ins)
	}
	if len(m.Outs) != 1 || m.Outs[0].Type != TypeUint64 {
		t.Fatalf("outs = %+v", m.Outs)
	}
	if _, ok := i.Method("Reset"); !ok {
		t.Fatal("Reset missing")
	}
	if _, ok := i.Method("Nope"); ok {
		t.Fatal("phantom method found")
	}
}

func TestParseInterfaceErrors(t *testing.T) {
	cases := map[string]string{
		"no name":     `<interface guid="1"><method name="M"/></interface>`,
		"bad guid":    `<interface name="I" guid="x"><method name="M"/></interface>`,
		"dup method":  `<interface name="I" guid="1"><method name="M"/><method name="M"/></interface>`,
		"bad type":    `<interface name="I" guid="1"><method name="M"><in name="a" type="map"/></method></interface>`,
		"empty mname": `<interface name="I" guid="1"><method name=""/></interface>`,
	}
	for name, doc := range cases {
		if _, err := ParseInterface([]byte(doc)); err == nil {
			t.Errorf("%s: parse succeeded", name)
		}
	}
}

func TestEncodeInterfaceRoundTrip(t *testing.T) {
	i, err := ParseInterface([]byte(sampleIDL))
	if err != nil {
		t.Fatal(err)
	}
	i2, err := ParseInterface(EncodeInterface(i))
	if err != nil {
		t.Fatal(err)
	}
	if i2.Name != i.Name || i2.GUID != i.GUID || len(i2.Methods) != len(i.Methods) {
		t.Fatalf("round trip changed interface")
	}
}

func TestValidParamType(t *testing.T) {
	for _, good := range []ParamType{TypeBool, TypeInt64, TypeUint64, TypeFloat64, TypeString, TypeBytes} {
		if !ValidParamType(good) {
			t.Errorf("%v reported invalid", good)
		}
	}
	if ValidParamType("uint8") || ValidParamType("") {
		t.Error("invalid type accepted")
	}
}

func TestConstraintTypeString(t *testing.T) {
	for ct, want := range map[ConstraintType]string{
		Link: "Link", Pull: "Pull", Gang: "Gang", AsymmetricGang: "AsymmetricGang",
	} {
		if got := ct.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if !strings.Contains(ConstraintType(99).String(), "invalid") {
		t.Error("out-of-range constraint type has bogus string")
	}
}
