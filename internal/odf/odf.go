// Package odf parses Offcode Description Files — the manifest format of
// §3.3 — and the WSDL-lite interface definitions they reference.
//
// An ODF has three parts (paper Figure 4): the package (bind name, GUID,
// interface specifications), the software environment (imports of peer
// Offcodes with Link/Pull/Gang/Asymmetric-Gang constraints), and the target
// device classes the Offcode can run on. The paper uses full WSDL for
// interfaces; this reproduction uses a compact XML IDL with the same role:
// naming methods, their parameters and their types, so proxies can be
// synthesized and invocations type-checked.
package odf

import (
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"

	"hydra/internal/device"
	"hydra/internal/guid"
)

// ConstraintType is an inter-Offcode layout constraint (paper §3.3).
type ConstraintType int

// Constraint kinds, in increasing strength of coupling.
const (
	// Link poses no placement constraint; it only records that one
	// Offcode needs the other to function.
	Link ConstraintType = iota
	// Pull requires both Offcodes on the same target device.
	Pull
	// Gang requires that both are offloaded (possibly to different
	// devices) — or both remain on the host.
	Gang
	// AsymmetricGang (a→b) requires that if a is offloaded, b is too;
	// offloading b does not imply offloading a.
	AsymmetricGang
)

func (c ConstraintType) String() string {
	switch c {
	case Link:
		return "Link"
	case Pull:
		return "Pull"
	case Gang:
		return "Gang"
	case AsymmetricGang:
		return "AsymmetricGang"
	}
	return "invalid"
}

// ParseConstraintType converts ODF text to a ConstraintType.
func ParseConstraintType(s string) (ConstraintType, error) {
	switch strings.ToLower(s) {
	case "", "link":
		return Link, nil
	case "pull":
		return Pull, nil
	case "gang":
		return Gang, nil
	case "asymmetricgang", "asym-gang", "gangto":
		return AsymmetricGang, nil
	}
	return Link, fmt.Errorf("odf: unknown reference type %q", s)
}

// Reference is an <import> entry: a dependency on a peer Offcode.
type Reference struct {
	File     string // path of the peer's ODF
	BindName string
	Type     ConstraintType
	Priority int
	GUID     guid.GUID
}

// DeviceClass mirrors a <device-class> target entry.
type DeviceClass struct {
	ID     uint32
	Name   string
	Bus    string
	MAC    string
	Vendor string
}

// ToDeviceClass converts to the device package's matcher form.
func (d DeviceClass) ToDeviceClass() device.Class {
	return device.Class{ID: d.ID, Name: d.Name, Bus: d.Bus, MAC: d.MAC, Vendor: d.Vendor}
}

// ODF is one parsed Offcode Description File.
type ODF struct {
	BindName       string
	GUID           guid.GUID
	InterfaceFiles []string
	Imports        []Reference
	Targets        []DeviceClass
	// HostFallback marks Offcodes that can also execute on the host CPU
	// (§3.4: "the runtime tries to find an Offcode that is capable of
	// executing at the host CPU").
	HostFallback bool
}

// --- XML schema ---

type xmlODF struct {
	XMLName xml.Name   `xml:"offcode"`
	Package xmlPackage `xml:"package"`
	SwEnv   struct {
		Imports []xmlImport `xml:"import"`
	} `xml:"sw-env"`
	Targets struct {
		Classes      []xmlDeviceClass `xml:"device-class"`
		HostFallback bool             `xml:"host-fallback"`
	} `xml:"targets"`
}

type xmlPackage struct {
	BindName  string `xml:"bindname"`
	GUID      string `xml:"GUID"`
	Interface struct {
		Includes []string `xml:"include"`
	} `xml:"interface"`
}

type xmlImport struct {
	File      string `xml:"file"`
	BindName  string `xml:"bindname"`
	Reference struct {
		Type string `xml:"type,attr"`
		Pri  string `xml:"pri,attr"`
		GUID string `xml:"GUID"`
	} `xml:"reference"`
}

type xmlDeviceClass struct {
	ID     string `xml:"id,attr"`
	Name   string `xml:"name"`
	Bus    string `xml:"bus"`
	MAC    string `xml:"mac"`
	Vendor string `xml:"vendor"`
}

// Parse decodes and validates one ODF document.
func Parse(data []byte) (*ODF, error) {
	var x xmlODF
	if err := xml.Unmarshal(data, &x); err != nil {
		return nil, fmt.Errorf("odf: %w", err)
	}
	o := &ODF{
		BindName:     strings.TrimSpace(x.Package.BindName),
		HostFallback: x.Targets.HostFallback,
	}
	if o.BindName == "" {
		return nil, fmt.Errorf("odf: missing <bindname>")
	}
	g, err := guid.Parse(strings.TrimSpace(x.Package.GUID))
	if err != nil {
		return nil, fmt.Errorf("odf: package %s: %w", o.BindName, err)
	}
	o.GUID = g
	for _, inc := range x.Package.Interface.Includes {
		inc = strings.Trim(strings.TrimSpace(inc), `"`)
		if inc != "" {
			o.InterfaceFiles = append(o.InterfaceFiles, inc)
		}
	}
	for i, imp := range x.SwEnv.Imports {
		ref := Reference{
			File:     strings.Trim(strings.TrimSpace(imp.File), `"`),
			BindName: strings.TrimSpace(imp.BindName),
		}
		ct, err := ParseConstraintType(imp.Reference.Type)
		if err != nil {
			return nil, fmt.Errorf("odf: %s import %d: %w", o.BindName, i, err)
		}
		ref.Type = ct
		if p := strings.TrimSpace(imp.Reference.Pri); p != "" {
			pri, err := strconv.Atoi(p)
			if err != nil {
				return nil, fmt.Errorf("odf: %s import %d: bad priority %q", o.BindName, i, p)
			}
			ref.Priority = pri
		}
		if gtext := strings.TrimSpace(imp.Reference.GUID); gtext != "" {
			g, err := guid.Parse(gtext)
			if err != nil {
				return nil, fmt.Errorf("odf: %s import %d: %w", o.BindName, i, err)
			}
			ref.GUID = g
		}
		if ref.BindName == "" && !ref.GUID.IsValid() {
			return nil, fmt.Errorf("odf: %s import %d: neither bindname nor GUID", o.BindName, i)
		}
		o.Imports = append(o.Imports, ref)
	}
	for i, dc := range x.Targets.Classes {
		c := DeviceClass{
			Name:   strings.TrimSpace(dc.Name),
			Bus:    strings.TrimSpace(dc.Bus),
			MAC:    strings.TrimSpace(dc.MAC),
			Vendor: strings.TrimSpace(dc.Vendor),
		}
		if idText := strings.TrimSpace(dc.ID); idText != "" {
			id, err := strconv.ParseUint(idText, 0, 32)
			if err != nil {
				return nil, fmt.Errorf("odf: %s device-class %d: bad id %q", o.BindName, i, idText)
			}
			c.ID = uint32(id)
		}
		o.Targets = append(o.Targets, c)
	}
	if len(o.Targets) == 0 && !o.HostFallback {
		return nil, fmt.Errorf("odf: %s: no target device classes and no host fallback", o.BindName)
	}
	return o, nil
}

// Encode renders the ODF back to XML (used by tooling and tests).
func (o *ODF) Encode() []byte {
	var x xmlODF
	x.Package.BindName = o.BindName
	x.Package.GUID = o.GUID.String()
	x.Package.Interface.Includes = o.InterfaceFiles
	for _, r := range o.Imports {
		var imp xmlImport
		imp.File = r.File
		imp.BindName = r.BindName
		imp.Reference.Type = r.Type.String()
		imp.Reference.Pri = strconv.Itoa(r.Priority)
		if r.GUID.IsValid() {
			imp.Reference.GUID = r.GUID.String()
		}
		x.SwEnv.Imports = append(x.SwEnv.Imports, imp)
	}
	for _, tc := range o.Targets {
		x.Targets.Classes = append(x.Targets.Classes, xmlDeviceClass{
			ID: "0x" + strconv.FormatUint(uint64(tc.ID), 16), Name: tc.Name,
			Bus: tc.Bus, MAC: tc.MAC, Vendor: tc.Vendor,
		})
	}
	x.Targets.HostFallback = o.HostFallback
	out, err := xml.MarshalIndent(&x, "", "  ")
	if err != nil {
		panic(err) // struct marshaling cannot fail
	}
	return out
}
