// Command tivopc runs one TiVoPC configuration (§6.4) and reports jitter,
// CPU utilization and pipeline integrity.
//
// Usage:
//
//	tivopc [-server simple|sendfile|offloaded] [-client idle|user|offloaded]
//	       [-seconds N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"

	"hydra/internal/sim"
	"hydra/internal/tivopc"
)

func main() {
	serverFlag := flag.String("server", "offloaded", "server variant: simple|sendfile|offloaded")
	clientFlag := flag.String("client", "idle", "client variant: idle|user|offloaded")
	seconds := flag.Int("seconds", 30, "simulated seconds")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	serverKind := map[string]tivopc.ServerKind{
		"simple": tivopc.SimpleServer, "sendfile": tivopc.SendfileServer,
		"offloaded": tivopc.OffloadedServer,
	}[*serverFlag]
	if serverKind == 0 {
		log.Fatalf("unknown server %q", *serverFlag)
	}
	clientKind, ok := map[string]tivopc.ClientKind{
		"idle": tivopc.IdleClient, "user": tivopc.UserspaceClient,
		"offloaded": tivopc.OffloadedClient,
	}[*clientFlag]
	if !ok {
		log.Fatalf("unknown client %q", *clientFlag)
	}

	duration := sim.Time(*seconds) * sim.Second
	tb := tivopc.NewTestbed(*seed, duration)
	client, err := tivopc.StartClient(tb, clientKind)
	if err != nil {
		log.Fatal(err)
	}
	server, err := tivopc.StartServer(tb, serverKind, duration)
	if err != nil {
		log.Fatal(err)
	}
	serverCPU := tb.Server.SampleUtilization(5 * sim.Second)
	clientCPU := tb.Client.SampleUtilization(5 * sim.Second)
	tb.Eng.Run(duration)

	fmt.Printf("TiVoPC: %s → %s, %v simulated\n", serverKind, clientKind, duration)
	fmt.Printf("  chunks sent: %d\n", server.TotalSent())
	gaps := client.Arrivals.Gaps()
	if len(gaps) > 0 {
		sum := 0.0
		for _, g := range gaps {
			sum += g
		}
		fmt.Printf("  arrivals: %d, mean inter-arrival %.3f ms\n", len(gaps)+1, sum/float64(len(gaps)))
	}
	fmt.Printf("  server CPU: %s\n", summarize(serverCPU.Samples))
	fmt.Printf("  client CPU: %s\n", summarize(clientCPU.Samples))
	if clientKind == tivopc.UserspaceClient {
		fmt.Printf("  frames decoded on host: %d\n", client.FramesDecoded)
	}
	if clientKind == tivopc.OffloadedClient {
		fmt.Printf("  frames decoded on GPU: %d (verified %d)\n",
			client.Decoder.Frames, client.Display.VerifiedOK)
		fmt.Printf("  recorded to NAS: %d bytes\n", client.DiskFile.Written)
	}
}

func summarize(xs []float64) string {
	if len(xs) == 0 {
		return "n/a"
	}
	min, max, sum := xs[0], xs[0], 0.0
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
		sum += x
	}
	return fmt.Sprintf("mean %.2f%% (min %.2f, max %.2f, %d windows)",
		sum/float64(len(xs)), min, max, len(xs))
}
