// Command tivopc runs one TiVoPC configuration (§6.4) and reports jitter,
// CPU utilization and pipeline integrity.
//
// With -crash-nic N the offloaded server runs the NIC-failover scenario
// instead: the primary programmable NIC crashes N seconds in, the runtime
// health monitor detects it, and the Offcodes migrate to the standby NIC
// with the stream resuming from its checkpoint.
//
// With -background the offloaded server runs the contended scenario: a
// competing tenant in its own application session burns server CPU and
// pins memory while the stream runs, demonstrating session isolation and
// teardown reclamation.
//
// With -trace FILE the run records a virtual-time trace of every layer
// (channels, bus, host OS, deployment) and writes it as Chrome
// trace-event JSON — load it in Perfetto, or summarize it with
// cmd/hydra-trace. A .csv extension selects CSV instead.
//
// Usage:
//
//	tivopc [-server simple|sendfile|offloaded] [-client idle|user|offloaded]
//	       [-seconds N] [-seed N] [-crash-nic N] [-background] [-trace out.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hydra/internal/obs"
	"hydra/internal/sim"
	"hydra/internal/tivopc"
)

func main() {
	serverFlag := flag.String("server", "offloaded", "server variant: simple|sendfile|offloaded")
	clientFlag := flag.String("client", "idle", "client variant: idle|user|offloaded")
	seconds := flag.Int("seconds", 30, "simulated seconds")
	seed := flag.Int64("seed", 1, "simulation seed")
	crashNIC := flag.Int("crash-nic", 0, "crash the server NIC after N seconds (failover scenario; 0 = off)")
	background := flag.Bool("background", false, "run a competing background app session next to the offloaded server")
	tracePath := flag.String("trace", "", "record a virtual-time trace and write it here (.json Chrome trace-event, .csv CSV)")
	flag.Parse()

	if *crashNIC > 0 || *background {
		if *tracePath != "" {
			log.Fatal("-trace covers the plain streaming run; drop -crash-nic/-background")
		}
	}
	if *crashNIC > 0 {
		runFailover(*seed, sim.Time(*seconds)*sim.Second, sim.Time(*crashNIC)*sim.Second)
		return
	}
	if *background {
		runContended(*seed, sim.Time(*seconds)*sim.Second)
		return
	}

	serverKind := map[string]tivopc.ServerKind{
		"simple": tivopc.SimpleServer, "sendfile": tivopc.SendfileServer,
		"offloaded": tivopc.OffloadedServer,
	}[*serverFlag]
	if serverKind == 0 {
		log.Fatalf("unknown server %q", *serverFlag)
	}
	clientKind, ok := map[string]tivopc.ClientKind{
		"idle": tivopc.IdleClient, "user": tivopc.UserspaceClient,
		"offloaded": tivopc.OffloadedClient,
	}[*clientFlag]
	if !ok {
		log.Fatalf("unknown client %q", *clientFlag)
	}

	duration := sim.Time(*seconds) * sim.Second
	var trace *obs.Config
	if *tracePath != "" {
		trace = &obs.Config{}
	}
	tb := tivopc.NewTestbedTraced(*seed, duration, trace)
	client, err := tivopc.StartClient(tb, clientKind)
	if err != nil {
		log.Fatal(err)
	}
	server, err := tivopc.StartServer(tb, serverKind, duration)
	if err != nil {
		log.Fatal(err)
	}
	serverCPU := tb.Server.SampleUtilization(5 * sim.Second)
	clientCPU := tb.Client.SampleUtilization(5 * sim.Second)
	tb.Eng.Run(duration)

	if err := server.DeployErr(); err != nil {
		log.Fatal(err)
	}
	if err := client.DeployErr(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TiVoPC: %s → %s, %v simulated\n", serverKind, clientKind, duration)
	fmt.Printf("  chunks sent: %d\n", server.TotalSent())
	gaps := client.Arrivals.Gaps()
	if len(gaps) > 0 {
		sum := 0.0
		for _, g := range gaps {
			sum += g
		}
		fmt.Printf("  arrivals: %d, mean inter-arrival %.3f ms\n", len(gaps)+1, sum/float64(len(gaps)))
	}
	fmt.Printf("  server CPU: %s\n", summarize(serverCPU.Samples))
	fmt.Printf("  client CPU: %s\n", summarize(clientCPU.Samples))
	if clientKind == tivopc.UserspaceClient {
		fmt.Printf("  frames decoded on host: %d\n", client.FramesDecoded)
	}
	if clientKind == tivopc.OffloadedClient {
		fmt.Printf("  frames decoded on GPU: %d (verified %d)\n",
			client.Decoder.Frames, client.Display.VerifiedOK)
		fmt.Printf("  recorded to NAS: %d bytes\n", client.DiskFile.Written)
	}
	if *tracePath != "" {
		if err := tb.Tracer.WriteFile(*tracePath); err != nil {
			log.Fatal(err)
		}
		if dropped := tb.Tracer.Dropped(); dropped > 0 {
			fmt.Fprintf(os.Stderr, "tivopc: trace ring overflowed, oldest %d records dropped\n", dropped)
		}
		fmt.Printf("  trace: %d records -> %s\n", tb.Tracer.Len(), *tracePath)
	}
}

// runFailover streams the offloaded server while the primary NIC crashes
// mid-run, then reports the recovery the runtime performed.
func runFailover(seed int64, duration, crashAt sim.Time) {
	if crashAt >= duration {
		log.Fatalf("-crash-nic %v is past the end of the %v run", crashAt, duration)
	}
	run, err := tivopc.RunFailoverScenario(seed, duration, tivopc.CrashPrimaryNIC(crashAt, 0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TiVoPC NIC failover: offloaded server, %v simulated, %s crashes at %v\n",
		duration, tivopc.PrimaryNIC, crashAt)
	for _, rec := range run.Recoveries {
		fmt.Printf("  %s failed: detected at %v, migrated %d offcodes in %v\n",
			rec.Device, rec.DetectedAt, len(rec.Stopped), rec.MigrationTime())
	}
	for _, lat := range run.DetectionLatencies() {
		fmt.Printf("  detection latency: %v\n", lat)
	}
	fmt.Printf("  chunks delivered: %d of %d expected (%.1f%% availability), ~%d lost in the outage\n",
		run.Delivered(), run.Expected, 100*run.Availability(), run.ChunksLost())
	post := run.PostRecoveryJitter()
	fmt.Printf("  post-recovery jitter: median %.2f ms, stddev %.4f ms (n=%d)\n",
		post.Median, post.StdDev, post.N)
	fmt.Printf("  stream resumed on: %s\n", run.FinalNIC)
}

// runContended streams the offloaded server while a second application
// session competes on the server host, then closes the tenant and reports
// what its teardown reclaimed.
func runContended(seed int64, duration sim.Time) {
	run, err := tivopc.RunContendedScenario(seed, duration)
	if err != nil {
		log.Fatal(err)
	}
	s := run.Stream.JitterSummary()
	fmt.Printf("TiVoPC contended: offloaded server + background session, %v simulated\n", duration)
	fmt.Printf("  chunks sent: %d\n", run.Stream.Sent)
	fmt.Printf("  stream jitter: median %.4f ms, stddev %.4f ms (device-timer level despite contention)\n",
		s.Median, s.StdDev)
	fmt.Printf("  background tenant: %d work periods in its own session\n", run.BackgroundIterations)
	fmt.Printf("  server CPU: %s\n", summarize(run.Stream.CPUSamples))
	fmt.Printf("  teardown reclaimed: %d bytes of pinned memory\n", run.ReclaimedBytes)
}

func summarize(xs []float64) string {
	if len(xs) == 0 {
		return "n/a"
	}
	min, max, sum := xs[0], xs[0], 0.0
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
		sum += x
	}
	return fmt.Sprintf("mean %.2f%% (min %.2f, max %.2f, %d windows)",
		sum/float64(len(xs)), min, max, len(xs))
}
