// Command cluster-shard runs a single X9 cluster-sharding cell with
// user-chosen knobs: host count, shard count, inter-host link latency, and
// an optional whole-host kill at half time. It prints the solved placement
// outcome — aggregate and per-shard throughput, cross-host bridge traffic,
// and (with -kill) the cross-host migration record.
//
// Usage:
//
//	cluster-shard [-hosts N] [-shards N] [-latency D] [-duration D] [-kill] [-seed N]
//
// Examples:
//
//	cluster-shard -hosts 4 -shards 8                 # the X9 headline cell
//	cluster-shard -hosts 4 -latency 5ms              # latency-bound remote shards
//	cluster-shard -hosts 4 -kill                     # migrate a dead machine's shards
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"hydra/internal/cluster"
	"hydra/internal/experiments"
	"hydra/internal/sim"
)

func main() {
	hosts := flag.Int("hosts", 4, "backend host count (1 NIC each)")
	shards := flag.Int("shards", 8, "shard worker count")
	latency := flag.Duration("latency", 20*time.Microsecond, "one-way inter-host link latency")
	duration := flag.Duration("duration", 4*time.Second, "simulated run length")
	kill := flag.Bool("kill", false, "fail the last host at half time and migrate its shards")
	seed := flag.Int64("seed", experiments.DefaultSeed, "simulation seed")
	flag.Parse()
	if *hosts < 1 || *shards < 1 {
		log.Fatal("cluster-shard: -hosts and -shards must be ≥ 1")
	}
	if *kill && *hosts < 2 {
		log.Fatal("cluster-shard: -kill needs at least 2 hosts to migrate onto")
	}

	link := cluster.Link{Latency: sim.Time(latency.Nanoseconds()), BytesPerSec: 125e6}
	dur := sim.Time(duration.Nanoseconds())
	row, err := experiments.RunClusterCell(*seed, dur, *hosts, *shards, link, *kill)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cluster-shard: %d shards over %d hosts, %v link latency, %v simulated\n",
		*shards, *hosts, *latency, *duration)
	fmt.Printf("  aggregate: %d msgs (%.0f msgs/s), per-shard min/max %d/%d\n",
		row.Total, row.MsgsPerSec, row.MinShard, row.MaxShard)
	fmt.Printf("  bridges: %d cross-host, %d relayed, %d dropped\n",
		row.CrossBridges, row.Bridged, row.Dropped)
	if *kill {
		fmt.Printf("  migration: %d shards moved off h%d in %.2f ms; %d msgs after resume\n",
			row.Moved, *hosts-1, row.MigrationMS, row.PostKillMsgs)
	}
}
