// Command odflint validates Offcode Description Files and interface
// definitions: XML well-formedness, required fields, GUID syntax,
// constraint types, device classes and parameter types.
//
// With -traceguard DIR it instead runs the repository's trace-guard
// check: every obs recorder call site (Instant/Begin/End/Complete on a
// *tr shard) under DIR/internal must sit inside an `if ... .On()` fast
// path, so a disabled recorder never evaluates record arguments. CI runs
// it against the repo root.
//
// Usage:
//
//	odflint file1.odf iface1.xml ...
//	odflint -traceguard .
package main

import (
	"fmt"
	"os"
	"strings"

	"hydra/internal/odf"
)

func main() {
	if len(os.Args) == 3 && os.Args[1] == "-traceguard" {
		if traceguard(os.Args[2]) > 0 {
			os.Exit(1)
		}
		return
	}
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: odflint <file.odf|file.xml> ... | odflint -traceguard <repo-root>")
		os.Exit(2)
	}
	failed := 0
	for _, path := range os.Args[1:] {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Printf("%-30s ERROR %v\n", path, err)
			failed++
			continue
		}
		if strings.Contains(string(raw), "<interface") && !strings.Contains(string(raw), "<offcode") {
			i, err := odf.ParseInterface(raw)
			if err != nil {
				fmt.Printf("%-30s INVALID %v\n", path, err)
				failed++
				continue
			}
			fmt.Printf("%-30s OK interface %s (GUID %v, %d methods)\n", path, i.Name, i.GUID, len(i.Methods))
			continue
		}
		o, err := odf.Parse(raw)
		if err != nil {
			fmt.Printf("%-30s INVALID %v\n", path, err)
			failed++
			continue
		}
		fmt.Printf("%-30s OK offcode %s (GUID %v, %d imports, %d targets)\n",
			path, o.BindName, o.GUID, len(o.Imports), len(o.Targets))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
