// Command odflint validates Offcode Description Files and interface
// definitions: XML well-formedness, required fields, GUID syntax,
// constraint types, device classes and parameter types.
//
// Usage:
//
//	odflint file1.odf iface1.xml ...
package main

import (
	"fmt"
	"os"
	"strings"

	"hydra/internal/odf"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: odflint <file.odf|file.xml> ...")
		os.Exit(2)
	}
	failed := 0
	for _, path := range os.Args[1:] {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Printf("%-30s ERROR %v\n", path, err)
			failed++
			continue
		}
		if strings.Contains(string(raw), "<interface") && !strings.Contains(string(raw), "<offcode") {
			i, err := odf.ParseInterface(raw)
			if err != nil {
				fmt.Printf("%-30s INVALID %v\n", path, err)
				failed++
				continue
			}
			fmt.Printf("%-30s OK interface %s (GUID %v, %d methods)\n", path, i.Name, i.GUID, len(i.Methods))
			continue
		}
		o, err := odf.Parse(raw)
		if err != nil {
			fmt.Printf("%-30s INVALID %v\n", path, err)
			failed++
			continue
		}
		fmt.Printf("%-30s OK offcode %s (GUID %v, %d imports, %d targets)\n",
			path, o.BindName, o.GUID, len(o.Imports), len(o.Targets))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
