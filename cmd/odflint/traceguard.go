package main

// The -traceguard mode: a static check that every trace-recorder call
// site in the simulator's hot paths is protected by the enabled-flag
// fast path. The obs recorder's overhead contract says a disabled
// recorder costs one nil-check branch — which only holds if call sites
// never evaluate record arguments before checking On(). The guard walks
// every non-test file under internal/ (except internal/obs itself, whose
// methods are the implementation) and requires each call to a recorder
// method (Instant, Begin, End, Complete) to sit lexically inside an `if`
// whose condition calls .On() — including closures built inside such a
// block, the idiom the async span-end sites use.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// recorderMethods are the obs.Shard recording entry points.
var recorderMethods = map[string]bool{
	"Instant": true, "Begin": true, "End": true, "Complete": true,
}

// traceguard lints internal/ under root; returns the number of unguarded
// call sites after printing one line per violation.
func traceguard(root string) int {
	dirs, err := filepath.Glob(filepath.Join(root, "internal", "*"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceguard:", err)
		return 1
	}
	sort.Strings(dirs)
	violations, files := 0, 0
	for _, dir := range dirs {
		if filepath.Base(dir) == "obs" {
			continue // the recorder itself
		}
		if info, err := os.Stat(dir); err != nil || !info.IsDir() {
			continue
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "traceguard: %s: %v\n", dir, err)
			violations++
			continue
		}
		for _, pkg := range pkgs {
			for path, f := range pkg.Files {
				files++
				violations += lintFile(fset, path, f)
			}
		}
	}
	if violations == 0 {
		fmt.Printf("traceguard: ok (%d files, every recorder call guarded by .On())\n", files)
	}
	return violations
}

// lintFile reports recorder calls not nested under an On()-conditioned if.
func lintFile(fset *token.FileSet, path string, f *ast.File) int {
	v := &guardVisitor{fset: fset, path: path}
	ast.Walk(v, f)
	return v.violations
}

// guardVisitor tracks the lexical ancestor stack during the walk.
type guardVisitor struct {
	fset       *token.FileSet
	path       string
	stack      []ast.Node
	violations int
}

func (v *guardVisitor) Visit(n ast.Node) ast.Visitor {
	if n == nil {
		v.stack = v.stack[:len(v.stack)-1]
		return nil
	}
	v.stack = append(v.stack, n)
	if call, ok := n.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
			recorderMethods[sel.Sel.Name] && isRecorderExpr(sel.X) && !v.guarded() {
			pos := v.fset.Position(call.Pos())
			fmt.Fprintf(os.Stderr, "traceguard: %s:%d: %s.%s call not inside an if .On() guard\n",
				v.path, pos.Line, exprString(sel.X), sel.Sel.Name)
			v.violations++
		}
	}
	return v
}

// guarded reports whether any enclosing if-statement's condition calls
// .On(). The call may sit in a closure defined inside the guarded block;
// lexical nesting is exactly the overhead contract (no argument
// evaluation unless the guard passed when the closure was built).
func (v *guardVisitor) guarded() bool {
	for _, anc := range v.stack {
		ifStmt, ok := anc.(*ast.IfStmt)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(ifStmt.Cond, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "On" {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// isRecorderExpr reports whether the receiver expression is a recorder
// shard by the repo's naming convention: the identifier or final field
// is "tr" or ends in "tr" (tr, dtr, rt.tr, c.tr, ...).
func isRecorderExpr(x ast.Expr) bool {
	switch e := x.(type) {
	case *ast.Ident:
		return e.Name == "tr" || strings.HasSuffix(e.Name, "tr")
	case *ast.SelectorExpr:
		return e.Sel.Name == "tr" || strings.HasSuffix(e.Sel.Name, "tr")
	}
	return false
}

// exprString renders the small receiver expressions the check reports.
func exprString(x ast.Expr) string {
	switch e := x.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return "?"
}
