// Command hydra-bench regenerates every table and figure from the paper's
// evaluation plus the repository's ablations, printing each next to the
// published numbers. This is the EXPERIMENTS.md generator.
//
// Usage:
//
//	hydra-bench [-quick] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hydra/internal/experiments"
	"hydra/internal/sim"
)

func main() {
	quick := flag.Bool("quick", false, "short runs (20 s simulated instead of 120 s)")
	seed := flag.Int64("seed", experiments.DefaultSeed, "simulation seed")
	flag.Parse()

	duration := experiments.DefaultDuration
	if *quick {
		duration = experiments.QuickDuration
	}
	fmt.Printf("HYDRA evaluation reproduction — seed %d, %v simulated per scenario\n\n",
		*seed, duration)

	fmt.Println(experiments.RunFigure1().Render())

	jit, err := experiments.RunTable2Figure9(*seed, duration)
	check(err)
	fmt.Println(jit.RenderTable2())
	check(experiments.CheckJitterShape(jit))
	fmt.Println(jit.RenderFigure9())

	load, err := experiments.RunTable3Figure10(*seed, duration)
	check(err)
	fmt.Println(load.RenderTable3())
	fmt.Println(load.RenderFigure10())

	cli, err := experiments.RunTable4(*seed, duration)
	check(err)
	fmt.Println(cli.RenderTable4())
	fmt.Println(cli.RenderClientL2())

	lay, err := experiments.RunLayoutAblation(60, *seed)
	check(err)
	fmt.Println(lay.Render())

	ch, err := experiments.RunChannelAblation(8192, 256, *seed)
	check(err)
	fmt.Println(ch.Render())

	ld, err := experiments.RunLoaderAblation(32<<10, *seed)
	check(err)
	fmt.Println(ld.Render())

	en, err := experiments.RunEnergy(*seed, duration)
	check(err)
	fmt.Println(en.Render())

	_ = sim.Second
}

func check(err error) {
	if err != nil {
		log.Println(err)
		os.Exit(1)
	}
}
