// Command hydra-bench regenerates every table and figure from the paper's
// evaluation plus the repository's ablations, printing each next to the
// published numbers. This is the EXPERIMENTS.md generator.
//
// With -json it instead emits a machine-readable report — per-scenario
// headline metrics plus wall-clock — so successive runs can be archived
// (BENCH_*.json) and compared to track the perf trajectory.
//
// The -sweep scenario replays the Table 2 jitter measurement across N
// seeds twice: serially, then fanned out over the testbed.Sweep worker
// pool. Per-seed results are bit-identical; only the wall clock differs.
//
// The -scenario flag runs selected experiments by name, comma-separated
// (e.g. -scenario x6-failover or -scenario engine,x7-saturation,x9; the
// aliases x8/x9/x10/x11 expand to x8-contention/x9-cluster/x10-autoscale/
// x11-syscalls), which makes iterating on one table cheap. CI archives
// `-json -scenario x7-saturation` output as the per-commit channel
// hot-path baseline (cycles/message, latency, interrupts, event volume),
// `-json -scenario x8-contention` as the multi-app contention baseline
// (admissions, quota denials, per-app throughput, teardown reclamation),
// `-json -scenario x9-cluster` as the cluster sharding baseline
// (per-cell throughput, cross-host bridge counts, migration time),
// `-json -scenario x10-autoscale` as the live-mutation baseline
// (capacity saved, hot-swap window, replayed client messages), and
// `-json -scenario x11-syscalls` as the device-syscall dispatch baseline
// (host cycles/syscall per variant×rate, p99 completion latency,
// hot-swap replay window), and `-json -scenario x12-dataplane` as the
// sharded data-plane baseline (aggregate msgs/s and windowed hit
// rate/latency per host count, the 4-host scaling headline, the churn
// soak's swap window). The x9 scenario runs its grid twice — serial,
// then the Sweep pool — and fails unless the rows are bit-identical; x10
// does the same for its elastic cell's window bodies, x11 for every
// rate cell of its syscall grid, and x12 for every host count of its
// weak-scaling grid plus the soak (rows and flow traces).
//
// Two scenarios gate the simulator core itself: `engine` runs the
// chain/wide/churn microbenchmarks (events/sec and allocs/event for the
// ladder queue + pooled events) plus the chain-trace-off/on recorder
// overhead rows, and `x9-parallel` runs the conservative-window cluster
// cell twice — window bodies on one worker, then many — failing unless
// the rows match bit for bit. The -baseline flag compares the current
// run against an archived BENCH_*.json and fails on a regression:
// *_events_per_sec and *_msgs_per_sec must stay above 0.8× the
// baseline, *_cycles_per_msg, *_cycles_per_syscall and *_p99_lat_us
// below 1.25×, and *_swap_window_ms below 1.5× (the hot-swap quiesce
// window must not quietly lengthen). CI runs `-scenario
// engine,x7-saturation,x9-cluster,x10-autoscale,x11-syscalls,x12-dataplane
// -baseline BENCH_0010.json` per commit.
//
// The -trace flag additionally runs one traced x7 saturation cell and
// writes its merged recorder stream as Chrome trace-event JSON
// (Perfetto-loadable; a .csv extension selects CSV instead), failing
// unless the per-message trace records reconcile with channel.Stats.
// -trace-x11 does the same for one x11 syscall-rate cell, reconciling
// the per-call issue/dispatch/complete records against the syscall
// stats, and -trace-x12 for one x12 data-plane cell, reconciling the
// per-packet flow events (hit/miss/insert/evict/expire/drop) against
// the flow-table ledgers. cmd/hydra-trace summarizes any of the files.
//
// Usage:
//
//	hydra-bench [-quick] [-seed N] [-json] [-sweep N] [-workers N] [-scenario a,b,...] [-baseline file] [-trace out.json] [-trace-x11 out.json] [-trace-x12 out.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"hydra/internal/experiments"
	"hydra/internal/obs"
	"hydra/internal/sim"
	"hydra/internal/tivopc"
)

type scenarioResult struct {
	Name    string             `json:"name"`
	WallMS  float64            `json:"wall_ms"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Seed       int64            `json:"seed"`
	SimSeconds float64          `json:"sim_seconds"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Scenarios  []scenarioResult `json:"scenarios"`
}

func main() {
	quick := flag.Bool("quick", false, "short runs (20 s simulated instead of 120 s)")
	seed := flag.Int64("seed", experiments.DefaultSeed, "simulation seed")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report on stdout")
	sweepN := flag.Int("sweep", 8, "jitter-sweep replicas (0 disables the sweep scenario)")
	workers := flag.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS)")
	scenario := flag.String("scenario", "", "run only the named scenarios, comma-separated (e.g. x6-failover or engine,x7-saturation,x9)")
	baseline := flag.String("baseline", "", "BENCH_*.json to compare against: fail if throughput or cycles/msg metrics regress")
	tracePath := flag.String("trace", "", "run one traced x7 cell and write its trace here (.json Chrome trace-event, .csv CSV)")
	traceX11 := flag.String("trace-x11", "", "run one traced x11 syscall-rate cell and write its trace here (same formats)")
	traceX12 := flag.String("trace-x12", "", "run one traced x12 data-plane cell and write its flow trace here (same formats)")
	flag.Parse()

	// selected is the requested scenario set (empty = run everything);
	// matched tracks which entries named a real scenario.
	selected := map[string]bool{}
	matched := map[string]bool{}
	for _, name := range strings.Split(*scenario, ",") {
		name = strings.TrimSpace(name)
		switch name {
		case "":
			continue
		case "x8": // short alias for the contention sweep
			name = "x8-contention"
		case "x9": // short alias for the cluster sharding grid
			name = "x9-cluster"
		case "x10": // short alias for the autoscaling ramp
			name = "x10-autoscale"
		case "x11": // short alias for the device-syscall rate grid
			name = "x11-syscalls"
		case "x12": // short alias for the data-plane scaling grid
			name = "x12-dataplane"
		}
		selected[name] = true
	}

	duration := experiments.DefaultDuration
	if *quick {
		duration = experiments.QuickDuration
	}
	rep := &report{Seed: *seed, SimSeconds: duration.Float64Seconds(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	verbose := !*jsonOut

	if verbose {
		fmt.Printf("HYDRA evaluation reproduction — seed %d, %v simulated per scenario\n\n",
			*seed, duration)
	}

	timed := func(name string, run func() (map[string]float64, string, error)) {
		if len(selected) > 0 && !selected[name] {
			return
		}
		matched[name] = true
		start := time.Now()
		metrics, rendered, err := run()
		check(err)
		rep.Scenarios = append(rep.Scenarios, scenarioResult{
			Name:    name,
			WallMS:  float64(time.Since(start).Microseconds()) / 1000,
			Metrics: metrics,
		})
		if verbose && rendered != "" {
			fmt.Println(rendered)
		}
	}

	timed("figure1", func() (map[string]float64, string, error) {
		f := experiments.RunFigure1()
		return map[string]float64{
			"tx_points": float64(len(f.TX)),
			"rx_points": float64(len(f.RX)),
		}, f.Render(), nil
	})

	timed("table2-figure9", func() (map[string]float64, string, error) {
		jit, err := experiments.RunTable2Figure9(*seed, duration)
		if err != nil {
			return nil, "", err
		}
		if err := experiments.CheckJitterShape(jit); err != nil {
			return nil, "", err
		}
		m := map[string]float64{}
		for _, row := range jit.Rows {
			m[slug(row.Scenario)+"_median_ms"] = row.Measured.Median
			m[slug(row.Scenario)+"_stddev_ms"] = row.Measured.StdDev
		}
		return m, jit.RenderTable2() + "\n" + jit.RenderFigure9(), nil
	})

	timed("table3-figure10", func() (map[string]float64, string, error) {
		load, err := experiments.RunTable3Figure10(*seed, duration)
		if err != nil {
			return nil, "", err
		}
		m := map[string]float64{}
		for _, row := range load.Rows {
			m[slug(row.Scenario)+"_cpu_pct"] = row.CPU.Mean
			m[slug(row.Scenario)+"_l2_slowdown"] = row.L2Slowdown
		}
		return m, load.RenderTable3() + "\n" + load.RenderFigure10(), nil
	})

	timed("table4-client", func() (map[string]float64, string, error) {
		cli, err := experiments.RunTable4(*seed, duration)
		if err != nil {
			return nil, "", err
		}
		m := map[string]float64{}
		for _, row := range cli.Rows {
			m[slug(row.Scenario)+"_cpu_pct"] = row.CPU.Mean
			m[slug(row.Scenario)+"_l2_miss_delta"] = row.MissDelta
		}
		return m, cli.RenderTable4() + "\n" + cli.RenderClientL2(), nil
	})

	timed("x2-layout", func() (map[string]float64, string, error) {
		lay, err := experiments.RunLayoutAblation(60, *seed)
		if err != nil {
			return nil, "", err
		}
		return map[string]float64{
			"greedy_gap_frac": lay.MeanGapFrac,
			"ilp_nodes":       lay.MeanILPNodes,
		}, lay.Render(), nil
	})

	timed("x3-channel", func() (map[string]float64, string, error) {
		ch, err := experiments.RunChannelAblation(8192, 256, *seed)
		if err != nil {
			return nil, "", err
		}
		return map[string]float64{
			"staged_vs_zerocopy": float64(ch.StagedTime) / float64(ch.ZeroCopyTime),
		}, ch.Render(), nil
	})

	timed("x4-loader", func() (map[string]float64, string, error) {
		ld, err := experiments.RunLoaderAblation(32<<10, *seed)
		if err != nil {
			return nil, "", err
		}
		return map[string]float64{
			"devlink_vs_hostlink": float64(ld.DeviceLink) / float64(ld.HostLink),
		}, ld.Render(), nil
	})

	timed("x5-energy", func() (map[string]float64, string, error) {
		en, err := experiments.RunEnergy(*seed, duration)
		if err != nil {
			return nil, "", err
		}
		m := map[string]float64{}
		for _, row := range en.Rows {
			m[slug(row.Scenario)+"_host_joules"] = row.HostJoules
		}
		return m, en.Render(), nil
	})

	timed("x6-failover", func() (map[string]float64, string, error) {
		fo, err := experiments.RunFailover(*seed, duration)
		if err != nil {
			return nil, "", err
		}
		if err := experiments.CheckFailoverShape(fo); err != nil {
			return nil, "", err
		}
		m := map[string]float64{}
		for _, row := range fo.Rows {
			m[slug(row.Scenario)+"_availability"] = row.Availability
			m[slug(row.Scenario)+"_detect_ms"] = row.DetectMS
			m[slug(row.Scenario)+"_migrate_ms"] = row.MigrateMS
			m[slug(row.Scenario)+"_post_stddev_ms"] = row.PostJitter.StdDev
		}
		return m, fo.Render(), nil
	})

	timed("x7-saturation", func() (map[string]float64, string, error) {
		sat, err := experiments.RunSaturation(*seed, experiments.X7Duration)
		if err != nil {
			return nil, "", err
		}
		if err := experiments.CheckSaturationShape(sat); err != nil {
			return nil, "", err
		}
		m := map[string]float64{}
		for _, row := range sat.Rows {
			key := fmt.Sprintf("rate%dk_batch%d", row.RateHz/1000, row.Batch)
			m[key+"_cycles_per_msg"] = row.CyclesPerMsg
			m[key+"_lat_mean_ms"] = row.MeanLatencyMS
			m[key+"_interrupts"] = float64(row.Interrupts)
			m[key+"_events"] = float64(row.EventsFired)
		}
		return m, sat.Render(), nil
	})

	timed("x8-contention", func() (map[string]float64, string, error) {
		con, err := experiments.RunContention(*seed, experiments.X8Duration)
		if err != nil {
			return nil, "", err
		}
		if err := experiments.CheckContentionShape(con); err != nil {
			return nil, "", err
		}
		m := map[string]float64{}
		for _, row := range con.Rows {
			key := slug(row.Scenario)
			m[key+"_admitted"] = float64(row.Admitted)
			m[key+"_rejected"] = float64(row.Rejected)
			m[key+"_quota_denied"] = float64(row.QuotaDenied)
			m[key+"_msgs_per_app"] = float64(row.MinMsgs)
			m[key+"_reclaimed_bytes"] = float64(row.ReclaimedHostBytes)
			m[key+"_leaked_bytes"] = float64(row.LeakedHostBytes)
		}
		return m, con.Render(), nil
	})

	timed("x9-cluster", func() (map[string]float64, string, error) {
		// The cluster grid runs twice — serial loop, then the Sweep worker
		// pool — and the rows must match bit for bit before they count.
		serial, err := experiments.RunClusterWorkers(*seed, experiments.X9Duration, 1)
		if err != nil {
			return nil, "", err
		}
		parallel, err := experiments.RunClusterWorkers(*seed, experiments.X9Duration, 0)
		if err != nil {
			return nil, "", err
		}
		for i := range serial.Rows {
			if serial.Rows[i] != parallel.Rows[i] {
				return nil, "", fmt.Errorf("x9 determinism violated: serial %+v != sweep %+v",
					serial.Rows[i], parallel.Rows[i])
			}
		}
		if err := experiments.CheckClusterShape(parallel); err != nil {
			return nil, "", err
		}
		m := map[string]float64{}
		for _, row := range parallel.Rows {
			key := slug(row.Scenario)
			m[key+"_msgs_per_sec"] = row.MsgsPerSec
			m[key+"_total_msgs"] = float64(row.Total)
			m[key+"_cross_bridges"] = float64(row.CrossBridges)
			if row.Killed {
				m[key+"_migration_ms"] = row.MigrationMS
				m[key+"_moved"] = float64(row.Moved)
			}
		}
		m["scaling_4h_over_1h"] = parallel.Rows[2].MsgsPerSec / parallel.Rows[0].MsgsPerSec
		return m, parallel.Render() + "  (serial ≡ sweep verified bit-identical)\n", nil
	})

	timed("x10-autoscale", func() (map[string]float64, string, error) {
		// The load-ramp comparison: static provisioning at the peak count
		// vs the autoscaler growing and shrinking the shard set through
		// incremental re-solves, with a live Offcode hot-swap at the peak.
		// RunAutoscale itself runs the elastic cell twice — window bodies
		// on one worker, then many — and fails unless the rows are
		// bit-identical.
		res, err := experiments.RunAutoscale(*seed, *workers)
		if err != nil {
			return nil, "", err
		}
		if err := experiments.CheckAutoscaleShape(res); err != nil {
			return nil, "", err
		}
		m := map[string]float64{}
		for _, p := range []struct {
			key string
			row *experiments.X10Row
		}{{"static", &res.Static}, {"auto", &res.Auto}} {
			m[p.key+"_offered"] = float64(p.row.Offered)
			m[p.key+"_delivered"] = float64(p.row.Delivered)
			m[p.key+"_lost"] = float64(p.row.Lost)
			m[p.key+"_shard_epochs"] = float64(p.row.ShardEpochs)
		}
		m["auto_peak_shards"] = float64(res.Auto.PeakShards)
		m["auto_final_shards"] = float64(res.Auto.FinalShards)
		m["auto_scale_ups"] = float64(res.Auto.ScaleUps)
		m["auto_scale_downs"] = float64(res.Auto.ScaleDowns)
		m["saved_frac"] = res.SavedFrac
		m["swap_window_ms"] = res.Auto.SwapWindowMS
		m["swap_replayed"] = float64(res.Auto.SwapReplayed)
		return m, res.Render(), nil
	})

	timed("x11-syscalls", func() (map[string]float64, string, error) {
		// The syscall-rate grid runs every cell twice — serial, then the
		// per-host engine group on many workers — and RunSyscalls fails
		// unless the rows match bit for bit. The hot-swap leg replays
		// in-flight syscalls across App.Replace with exactly-once
		// completion, gated by CheckSyscallShape.
		res, err := experiments.RunSyscalls(*seed, *workers)
		if err != nil {
			return nil, "", err
		}
		if err := experiments.CheckSyscallShape(res); err != nil {
			return nil, "", err
		}
		m := map[string]float64{}
		for _, row := range res.Rows {
			key := fmt.Sprintf("%s_rate%dk", slug(row.Variant), row.RateHz/1000)
			m[key+"_cycles_per_syscall"] = row.CyclesPerSyscall
			m[key+"_p99_lat_us"] = row.P99LatencyUS
			m[key+"_interrupts"] = float64(row.Interrupts)
			m[key+"_completed"] = float64(row.Completed)
		}
		m["batched_speedup"] = res.TopRateSpeedup
		m["swap_window_ms"] = res.Swap.SwapWindowMS
		m["swap_inflight"] = float64(res.Swap.InFlightAtSwap)
		m["swap_reissued"] = float64(res.Swap.Reissued)
		return m, res.Render(), nil
	})

	timed("x12-dataplane", func() (map[string]float64, string, error) {
		// The weak-scaling grid runs every host count twice — serial,
		// then the per-host engine group on many workers — plus the
		// churn-under-hot-swap soak, and RunDataPlane fails unless rows
		// match bit for bit. CheckDataPlaneShape gates conservation, the
		// exactly-once log ledger, hit rate under churn and the 4-host
		// scaling headline.
		res, err := experiments.RunDataPlane(*seed, *workers)
		if err != nil {
			return nil, "", err
		}
		if err := experiments.CheckDataPlaneShape(res); err != nil {
			return nil, "", err
		}
		m := map[string]float64{}
		for _, row := range res.Rows {
			key := fmt.Sprintf("hosts%d", row.Hosts)
			m[key+"_msgs_per_sec"] = row.MsgsPerSec
			m[key+"_hit_rate"] = row.HitRate
			m[key+"_p50_lat_us"] = row.P50LatUS
			m[key+"_p99_lat_us"] = row.P99LatUS
			m[key+"_log_lines"] = float64(row.LogLines)
		}
		m["scaling_4h_over_1h"] = res.Scaling4
		m["soak_swap_window_ms"] = res.Soak.SwapWindowMS
		m["soak_replayed"] = float64(res.Soak.SwapReplayed)
		m["soak_evicted"] = float64(res.Soak.Evicted)
		m["soak_log_lines"] = float64(res.Soak.LogLines)
		return m, res.Render(), nil
	})

	timed("engine", func() (map[string]float64, string, error) {
		eb, err := experiments.RunEngineBench(*seed, experiments.EngineBenchEvents)
		if err != nil {
			return nil, "", err
		}
		if err := experiments.CheckEngineBenchShape(eb, experiments.EngineBenchEvents); err != nil {
			return nil, "", err
		}
		m := map[string]float64{}
		for _, row := range eb.Rows {
			key := slug(row.Scenario)
			m[key+"_events"] = float64(row.Events)
			m[key+"_canceled"] = float64(row.Canceled)
			m[key+"_events_per_sec"] = row.EventsPerSec
			m[key+"_allocs_per_event"] = row.AllocsPerEvent
		}
		return m, eb.Render(), nil
	})

	timed("x9-parallel", func() (map[string]float64, string, error) {
		// The windowed cluster cell runs twice — window bodies serial,
		// then parallel — and the rows must match bit for bit. Wall
		// clocks are informational (1-CPU hosts cannot show a win).
		pr, err := experiments.RunClusterParallel(*seed, experiments.X9Duration, *workers)
		if err != nil {
			return nil, "", err
		}
		m := map[string]float64{
			"msgs_per_sec":  pr.Row.MsgsPerSec,
			"total_msgs":    float64(pr.Row.Total),
			"cross_bridges": float64(pr.Row.CrossBridges),
			"bridged":       float64(pr.Row.Bridged),
			"workers":       float64(pr.Workers),
			"serial_ms":     pr.SerialMS,
			"parallel_ms":   pr.ParallelMS,
		}
		rendered := fmt.Sprintf(
			"X9p — Conservative-window parallel cluster: 4 per-host engines, %d shards\n"+
				"  %.0f msgs/s over %d cross bridges; 1 worker ≡ %d workers bit-identical\n"+
				"  wall-clock: serial windows %.0f ms, parallel %.0f ms (GOMAXPROCS %d)\n",
			experiments.X9Shards, pr.Row.MsgsPerSec, pr.Row.CrossBridges, pr.Workers,
			pr.SerialMS, pr.ParallelMS, runtime.GOMAXPROCS(0))
		return m, rendered, nil
	})

	if selected["table2-jitter-sweep"] && *sweepN <= 0 {
		check(fmt.Errorf("scenario table2-jitter-sweep is disabled by -sweep 0"))
	}
	if *sweepN > 0 && (len(selected) == 0 || selected["table2-jitter-sweep"]) {
		matched["table2-jitter-sweep"] = true
		runSweep(rep, *seed, *sweepN, *workers, duration, verbose)
	}

	var unknown []string
	for name := range selected {
		if !matched[name] {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		check(fmt.Errorf("unknown scenario(s) %s", strings.Join(unknown, ", ")))
	}

	if *tracePath != "" {
		check(writeX7Trace(*tracePath, *seed, verbose))
	}
	if *traceX11 != "" {
		check(writeX11Trace(*traceX11, *seed, verbose))
	}
	if *traceX12 != "" {
		check(writeX12Trace(*traceX12, *seed, verbose))
	}

	if *baseline != "" {
		check(compareBaseline(rep, *baseline, verbose))
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(rep))
	}
}

// throughputBand is the floor for higher-is-better rate metrics
// (*_events_per_sec, *_msgs_per_sec) relative to the committed baseline:
// they are wall-clock derived, so CI tolerates up to a 20% dip before
// calling it a regression. cyclesBand is the ceiling for the
// lower-is-better *_cycles_per_msg metrics; those are virtual-clock
// derived and deterministic for a seed, but the band leaves room for
// intentional model changes that shift host cost slightly.
const (
	throughputBand = 0.8
	cyclesBand     = 1.25
	swapBand       = 1.5
)

// baselineClass maps a metric-key suffix to its regression test: floor
// ratios fail below the band, ceiling ratios fail above it.
type baselineClass struct {
	suffix  string
	band    float64
	ceiling bool
}

var baselineClasses = []baselineClass{
	{suffix: "_events_per_sec", band: throughputBand},
	{suffix: "_msgs_per_sec", band: throughputBand},
	{suffix: "_cycles_per_msg", band: cyclesBand, ceiling: true},
	// Host cost per device-initiated syscall (x11) is gated the same way
	// as cycles/msg: virtual-clock deterministic, ceiling leaves room for
	// intentional dispatch cost-model changes.
	{suffix: "_cycles_per_syscall", band: cyclesBand, ceiling: true},
	// Tail latency (x11 syscall completion, x12 data-plane send→process)
	// is virtual-clock deterministic per seed; the ceiling catches queueing
	// regressions while leaving room for intentional cost-model shifts.
	{suffix: "_p99_lat_us", band: cyclesBand, ceiling: true},
	// The hot-swap quiesce→replay window is virtual-clock deterministic
	// for a seed; the band leaves room for intentional cost-model shifts
	// while still catching a mutation path that stops overlapping work.
	{suffix: "_swap_window_ms", band: swapBand, ceiling: true},
}

// compareBaseline checks every classed metric (throughput floors,
// cycles/msg ceilings) this run shares with the archived report and
// errors on any regression. Scenario or metric keys present on only one
// side are ignored, so old baselines stay usable as the suite grows.
func compareBaseline(rep *report, path string, verbose bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	baseMetrics := map[string]map[string]float64{}
	for _, s := range base.Scenarios {
		baseMetrics[s.Name] = s.Metrics
	}
	classOf := func(key string) *baselineClass {
		for i := range baselineClasses {
			if strings.HasSuffix(key, baselineClasses[i].suffix) {
				return &baselineClasses[i]
			}
		}
		return nil
	}
	var regressions []string
	compared := 0
	for _, s := range rep.Scenarios {
		bm := baseMetrics[s.Name]
		if bm == nil {
			continue
		}
		// Sort for deterministic report order (Metrics is a map).
		keys := make([]string, 0, len(s.Metrics))
		for key := range s.Metrics {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			cl := classOf(key)
			if cl == nil {
				continue
			}
			got, want := s.Metrics[key], bm[key]
			if _, ok := bm[key]; !ok || want <= 0 {
				continue
			}
			compared++
			ratio := got / want
			if verbose {
				fmt.Printf("baseline %s/%s: %.2f vs %.2f (%.2fx)\n", s.Name, key, got, want, ratio)
			}
			bad, dir := ratio < cl.band, "<"
			if cl.ceiling {
				bad, dir = ratio > cl.band, ">"
			}
			if bad {
				regressions = append(regressions,
					fmt.Sprintf("%s/%s: %.2f vs baseline %.2f (%.2fx %s %.2fx)",
						s.Name, key, got, want, ratio, dir, cl.band))
			}
		}
	}
	if compared == 0 {
		return fmt.Errorf("baseline %s: no comparable classed metrics (ran scenarios: %d)", path, len(rep.Scenarios))
	}
	if len(regressions) > 0 {
		return fmt.Errorf("baseline %s: regressed:\n  %s", path, strings.Join(regressions, "\n  "))
	}
	return nil
}

// writeX7Trace runs one traced x7 saturation cell (the high-rate batched
// configuration) and writes its merged recorder stream to path — Chrome
// trace-event JSON unless the extension picks CSV. Before writing it
// re-derives the per-message totals from the trace and fails unless they
// reconcile exactly with channel.Stats, so an archived trace is known to
// agree with the accounting the tables report.
func writeX7Trace(path string, seed int64, verbose bool) error {
	row, tr, err := experiments.RunSaturationCellTraced(
		seed, experiments.X7Duration, 50_000, 8, 100*sim.Microsecond, &obs.Config{})
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if n := tr.Dropped(); n != 0 {
		return fmt.Errorf("trace: ring overflowed, %d records dropped", n)
	}
	counts := map[string]uint64{}
	for _, rec := range tr.Merged() {
		counts[rec.Name]++
	}
	for _, c := range []struct {
		name string
		want uint64
	}{
		{"chan.send", row.Sent},
		{"chan.delivered", row.Delivered},
		{"chan.irq", row.Interrupts},
	} {
		if counts[c.name] != c.want {
			return fmt.Errorf("trace: %s records %d, channel stats say %d", c.name, counts[c.name], c.want)
		}
	}
	if err := tr.WriteFile(path); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if verbose {
		fmt.Printf("trace: x7 cell (50k/s, batch 8) -> %s: %d records, %d msgs reconciled\n",
			path, tr.Len(), row.Sent)
	}
	return nil
}

// writeX11Trace runs one traced x11 syscall-rate cell at the top of the
// rate ladder and writes its merged recorder stream to path, after
// checking that the per-call issue/dispatch/complete records reconcile
// with the syscall stats the table reports. cmd/hydra-trace renders the
// file's per-mode dispatch breakdown and slowest-call list.
func writeX11Trace(path string, seed int64, verbose bool) error {
	rows, tr, err := experiments.RunX11CellTraced(seed, experiments.X11TopRate(), 1, &obs.Config{})
	if err != nil {
		return fmt.Errorf("trace-x11: %w", err)
	}
	if n := tr.Dropped(); n != 0 {
		return fmt.Errorf("trace-x11: ring overflowed, %d records dropped", n)
	}
	counts := map[string]uint64{}
	for _, rec := range tr.Merged() {
		if rec.Cat == obs.CatSyscall {
			counts[rec.Name]++
		}
	}
	var issued, executed, completed uint64
	for _, row := range rows {
		issued += row.Issued
		executed += row.Executed
		completed += row.Completed
	}
	for _, c := range []struct {
		name string
		want uint64
	}{
		{"syscall.issue", issued},
		{"syscall.dispatch", executed},
		{"syscall.complete", completed},
	} {
		if counts[c.name] != c.want {
			return fmt.Errorf("trace-x11: %s records %d, syscall stats say %d", c.name, counts[c.name], c.want)
		}
	}
	if err := tr.WriteFile(path); err != nil {
		return fmt.Errorf("trace-x11: %w", err)
	}
	if verbose {
		fmt.Printf("trace-x11: rate cell (%d/s, all variants) -> %s: %d records, %d syscalls reconciled\n",
			experiments.X11TopRate(), path, tr.Len(), issued)
	}
	return nil
}

// writeX12Trace runs one traced x12 data-plane cell (4 hosts, serial)
// and writes its merged recorder stream to path, after checking that the
// per-packet flow-event records (hit/miss/insert/evict/expire/drop)
// reconcile exactly with the flow-table ledgers the row reports.
func writeX12Trace(path string, seed int64, verbose bool) error {
	row, tr, err := experiments.RunX12CellTraced(seed, 4, 1, &obs.Config{})
	if err != nil {
		return fmt.Errorf("trace-x12: %w", err)
	}
	if n := tr.Dropped(); n != 0 {
		return fmt.Errorf("trace-x12: ring overflowed, %d records dropped", n)
	}
	counts := map[string]uint64{}
	for _, rec := range tr.Merged() {
		if rec.Cat == obs.CatFlow {
			counts[rec.Name]++
		}
	}
	for _, c := range []struct {
		name string
		want uint64
	}{
		{"flow.hit", row.Hits},
		{"flow.miss", row.Misses},
		{"flow.insert", row.Inserts},
		{"flow.evict", row.Evicted},
		{"flow.expire", row.Expired},
		{"flow.drop", row.PolicyDrops},
	} {
		if counts[c.name] != c.want {
			return fmt.Errorf("trace-x12: %s records %d, flow-table stats say %d", c.name, counts[c.name], c.want)
		}
	}
	if err := tr.WriteFile(path); err != nil {
		return fmt.Errorf("trace-x12: %w", err)
	}
	if verbose {
		fmt.Printf("trace-x12: data-plane cell (4 hosts, %d pkts/s) -> %s: %d records, %d lookups reconciled\n",
			row.OfferedRateHz, path, tr.Len(), row.Lookups)
	}
	return nil
}

// runSweep measures the multi-seed Table 2 jitter scenario twice — serial
// loop, then worker pool — verifying the pooled statistics match exactly
// and recording both wall clocks.
func runSweep(rep *report, baseSeed int64, replicas, workers int, duration sim.Time, verbose bool) {
	seeds := make([]int64, replicas)
	for i := range seeds {
		seeds[i] = baseSeed + int64(i)
	}

	start := time.Now()
	serial, err := experiments.RunJitterSweep(tivopc.SimpleServer, seeds, duration, 1)
	check(err)
	serialMS := float64(time.Since(start).Microseconds()) / 1000

	start = time.Now()
	parallel, err := experiments.RunJitterSweep(tivopc.SimpleServer, seeds, duration, workers)
	check(err)
	parallelMS := float64(time.Since(start).Microseconds()) / 1000

	if serial.Pooled != parallel.Pooled {
		check(fmt.Errorf("sweep determinism violated: serial %+v != parallel %+v",
			serial.Pooled, parallel.Pooled))
	}

	speedup := serialMS / parallelMS
	rep.Scenarios = append(rep.Scenarios, scenarioResult{
		Name:   "table2-jitter-sweep",
		WallMS: serialMS + parallelMS,
		Metrics: map[string]float64{
			"replicas":         float64(replicas),
			"workers":          float64(parallel.Workers),
			"serial_ms":        serialMS,
			"parallel_ms":      parallelMS,
			"speedup":          speedup,
			"pooled_median_ms": parallel.Pooled.Median,
			"pooled_stddev_ms": parallel.Pooled.StdDev,
		},
	})
	if verbose {
		fmt.Println(parallel.Render())
		fmt.Printf("sweep wall-clock: serial %.0f ms, parallel %.0f ms (%.2fx, %d workers) — pooled stats identical\n",
			serialMS, parallelMS, speedup, parallel.Workers)
	}
}

func slug(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'A' && r <= 'Z':
			out = append(out, r+'a'-'A')
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ' || r == '-':
			out = append(out, '_')
		}
	}
	return string(out)
}

func check(err error) {
	if err != nil {
		log.Println(err)
		os.Exit(1)
	}
}
