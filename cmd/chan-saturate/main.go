// Command chan-saturate drives one cell of the X7 channel-saturation
// experiment with user-chosen knobs: a programmable NIC streams MTU-sized
// messages device→host while the descriptor ring batches completions and
// coalesces interrupts. It prints (or emits as JSON) the host cost of
// receiving the stream — cycles per message, delivery latency, interrupts,
// bus transactions — so batching policies can be compared interactively:
//
//	chan-saturate -rate 50000 -batch 1
//	chan-saturate -rate 50000 -batch 32 -coalesce 500us
//
// With -grid it instead runs the full X7 rate × policy grid exactly as
// cmd/hydra-bench does.
//
// With -trace FILE the cell runs with the virtual-time recorder attached
// and writes the trace — Chrome trace-event JSON (load it in Perfetto),
// or CSV when FILE ends in .csv. cmd/hydra-trace summarizes the file.
//
// Usage:
//
//	chan-saturate [-rate N] [-batch N] [-coalesce DUR] [-seconds N]
//	              [-seed N] [-json] [-grid] [-trace out.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"hydra/internal/experiments"
	"hydra/internal/obs"
	"hydra/internal/sim"
)

func main() {
	rate := flag.Int("rate", 50_000, "message rate (messages per simulated second)")
	batch := flag.Int("batch", 32, "descriptor completions per batch (1 = per-message delivery)")
	coalesce := flag.Duration("coalesce", 500*time.Microsecond, "interrupt-coalescing timeout (virtual time)")
	seconds := flag.Float64("seconds", experiments.X7Duration.Float64Seconds(), "simulated seconds")
	seed := flag.Int64("seed", experiments.DefaultSeed, "simulation seed")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON on stdout")
	grid := flag.Bool("grid", false, "run the full X7 rate × policy grid instead of one cell")
	tracePath := flag.String("trace", "", "record a virtual-time trace of the cell and write it here (.json Chrome trace-event, .csv CSV)")
	flag.Parse()

	duration := sim.Seconds(*seconds)
	if *grid {
		if *tracePath != "" {
			log.Fatal("-trace records a single cell; drop -grid")
		}
		res, err := experiments.RunSaturation(*seed, duration)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.CheckSaturationShape(res); err != nil {
			log.Fatal(err)
		}
		emit(res.Rows, res.Render(), *jsonOut)
		return
	}

	var trace *obs.Config
	if *tracePath != "" {
		trace = &obs.Config{}
	}
	row, tr, err := experiments.RunSaturationCellTraced(*seed, duration, *rate, *batch, sim.Time(*coalesce), trace)
	if err != nil {
		log.Fatal(err)
	}
	if *tracePath != "" {
		if err := tr.WriteFile(*tracePath); err != nil {
			log.Fatal(err)
		}
		if dropped := tr.Dropped(); dropped > 0 {
			fmt.Fprintf(os.Stderr, "chan-saturate: trace ring overflowed, oldest %d records dropped\n", dropped)
		}
	}
	rendered := fmt.Sprintf(
		"chan-saturate: %d msgs/s × %v, batch %d, coalesce %v (seed %d)\n"+
			"  delivered:    %d of %d sent\n"+
			"  cycles/msg:   %.0f host cycles\n"+
			"  latency:      mean %.4f ms, max %.4f ms\n"+
			"  interrupts:   %d (%d batches, %d coalesce-timer flushes)\n"+
			"  bus:          %d transactions\n"+
			"  simulator:    %d events fired\n",
		*rate, duration, *batch, sim.Time(*coalesce), *seed,
		row.Delivered, row.Sent, row.CyclesPerMsg,
		row.MeanLatencyMS, row.MaxLatencyMS,
		row.Interrupts, row.Batches, row.CoalesceFlushes,
		row.BusTransactions, row.EventsFired)
	emit(row, rendered, *jsonOut)
}

func emit(v any, rendered string, jsonOut bool) {
	if !jsonOut {
		fmt.Print(rendered)
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}
