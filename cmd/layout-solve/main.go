// Command layout-solve reads Offcode Description Files, builds the
// offloading layout graph against a device inventory, and resolves it with
// the greedy heuristic and the §5 ILP, printing both placements.
//
// Usage:
//
//	layout-solve [-objective offload|bus] file1.odf file2.odf ...
//
// With no files it solves the built-in TiVoPC Figure 8 layout.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hydra/internal/device"
	"hydra/internal/layout"
	"hydra/internal/odf"
)

func main() {
	objFlag := flag.String("objective", "offload", "objective: offload|bus")
	flag.Parse()

	objective := layout.MaximizeOffload
	if *objFlag == "bus" {
		objective = layout.MaximizeBusUsage
	}

	targets := []layout.Target{
		{Name: "nic0", Class: device.Class{ID: 1, Name: "Network Device", Bus: "pci", MAC: "ethernet"}, BusCapacity: 50},
		{Name: "disk0", Class: device.Class{ID: 2, Name: "Storage Device", Bus: "pci"}, BusCapacity: 40},
		{Name: "gpu0", Class: device.Class{ID: 3, Name: "Display Device", Bus: "pci"}, BusCapacity: 60},
	}

	var odfs []*odf.ODF
	if flag.NArg() == 0 {
		odfs = builtinTivo()
		fmt.Println("no ODF files given; solving the built-in TiVoPC layout (Figure 8)")
	} else {
		for _, path := range flag.Args() {
			raw, err := os.ReadFile(path)
			if err != nil {
				log.Fatal(err)
			}
			o, err := odf.Parse(raw)
			if err != nil {
				log.Fatalf("%s: %v", path, err)
			}
			odfs = append(odfs, o)
		}
	}

	g, err := layout.FromODFs(odfs, targets, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d Offcodes, %d constraint edges, %d targets\n\n",
		len(g.Nodes), len(g.Edges), g.K())

	if p, err := g.SolveGreedy(objective); err != nil {
		fmt.Printf("greedy: %v\n", err)
	} else {
		fmt.Printf("greedy placement (objective %.0f):\n", g.ObjectiveValue(p, objective))
		print(g, p)
	}
	if p, sol, err := g.SolveILP(objective); err != nil {
		fmt.Printf("ILP: %v\n", err)
	} else {
		fmt.Printf("\nILP placement (objective %.0f, optimal, %d nodes):\n", sol.Objective, sol.Nodes)
		print(g, p)
	}
}

func print(g *layout.Graph, p layout.Placement) {
	for n := range g.Nodes {
		fmt.Printf("  %-24s → %s\n", g.Nodes[n].BindName, g.Targets[p[n]].Name)
	}
}

func builtinTivo() []*odf.ODF {
	mk := func(doc string) *odf.ODF {
		o, err := odf.Parse([]byte(doc))
		if err != nil {
			panic(err)
		}
		return o
	}
	return []*odf.ODF{
		mk(`<offcode><package><bindname>tivo.Streamer</bindname><GUID>1</GUID></package>
<sw-env>
 <import><bindname>tivo.Decoder</bindname><reference type="Gang"><GUID>2</GUID></reference></import>
 <import><bindname>tivo.File</bindname><reference type="Gang"><GUID>4</GUID></reference></import>
</sw-env>
<targets><device-class><name>Network Device</name></device-class><host-fallback>true</host-fallback></targets></offcode>`),
		mk(`<offcode><package><bindname>tivo.Decoder</bindname><GUID>2</GUID></package>
<sw-env><import><bindname>tivo.Display</bindname><reference type="Pull"><GUID>3</GUID></reference></import></sw-env>
<targets><device-class><name>Display Device</name></device-class><host-fallback>true</host-fallback></targets></offcode>`),
		mk(`<offcode><package><bindname>tivo.Display</bindname><GUID>3</GUID></package>
<targets><device-class><name>Display Device</name></device-class><host-fallback>true</host-fallback></targets></offcode>`),
		mk(`<offcode><package><bindname>tivo.File</bindname><GUID>4</GUID></package>
<targets><device-class><name>Storage Device</name></device-class><host-fallback>true</host-fallback></targets></offcode>`),
		mk(`<offcode><package><bindname>tivo.GUI</bindname><GUID>5</GUID></package>
<sw-env><import><bindname>tivo.Streamer</bindname><reference type="Link"><GUID>1</GUID></reference></import></sw-env>
<targets><host-fallback>true</host-fallback></targets></offcode>`),
	}
}
