// Command hydra-trace summarizes a virtual-time trace written by the
// -trace flag of cmd/hydra-bench, cmd/chan-saturate or cmd/tivopc
// (Chrome trace-event JSON; the same file loads in Perfetto for the
// visual view). It prints a per-component virtual-time breakdown — how
// much simulated time each layer's spans cover and how many records each
// produced — and the longest individual spans.
//
// Traces holding device-syscall records (the syscall component, written
// by `hydra-bench -trace-x11`) get an extra section: the call lifecycle
// funnel (issued→dispatched→completed plus replay/dedup counts), the
// host dispatch cost per mode (sync/async/ff exec spans), per-op
// device-observed completion latency, and the -top N slowest individual
// syscalls by end-to-end span.
//
// With -msg ID it instead reconstructs the critical path of one message
// through the stack: the window from the message's chan.send instant to
// its chan.delivered instant, with every channel, bus, and host-OS span
// overlapping that window on the same engine shard, in virtual-time
// order — the NIC→bus→host walk of a single delivery. Message ids are
// the arg of chan.send/chan.delivered instants (stamped by the channel
// when tracing is on; the first send is id 1).
//
// Usage:
//
//	hydra-trace [-top N] [-msg ID] trace.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"hydra/internal/obs"
	"hydra/internal/sim"
)

func main() {
	top := flag.Int("top", 10, "how many of the longest spans to list")
	msg := flag.Int64("msg", 0, "reconstruct the critical path of this message id instead (0 = off)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hydra-trace [-top N] [-msg ID] trace.json")
		os.Exit(2)
	}
	tr, err := obs.ReadChromeFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	if len(tr.Records) == 0 {
		log.Fatalf("hydra-trace: %s holds no records", flag.Arg(0))
	}
	if tr.Dropped > 0 {
		fmt.Fprintf(os.Stderr,
			"hydra-trace: WARNING: recorder ring overflowed while capturing; the oldest %d records are missing\n",
			tr.Dropped)
	}

	if *msg != 0 {
		criticalPath(tr, *msg)
		return
	}
	summarize(tr, *top)
	summarizeSyscalls(tr, *top)
}

// nameStat aggregates one record name's rows.
type nameStat struct {
	name    string
	cat     obs.Cat
	count   int
	spans   int
	total   sim.Time // summed span duration
	longest sim.Time
}

// summarize prints the per-component breakdown and the top spans.
func summarize(tr *obs.ChromeTrace, top int) {
	first := tr.Records[0].At
	last := first
	byName := map[string]*nameStat{}
	catTotal := map[obs.Cat]sim.Time{}
	catRecords := map[obs.Cat]int{}
	shards := map[int32]bool{}
	for i := range tr.Records {
		r := &tr.Records[i]
		shards[r.Shard] = true
		if end := r.At + r.Dur; end > last {
			last = end
		}
		st := byName[r.Name]
		if st == nil {
			st = &nameStat{name: r.Name, cat: r.Cat}
			byName[r.Name] = st
		}
		st.count++
		catRecords[r.Cat]++
		if r.Kind == obs.KindSpan {
			st.spans++
			st.total += r.Dur
			catTotal[r.Cat] += r.Dur
			if r.Dur > st.longest {
				st.longest = r.Dur
			}
		}
	}
	span := last - first
	fmt.Printf("trace: %d records on %d shard(s), %v of virtual time (%v → %v)\n",
		len(tr.Records), len(shards), span, first, last)
	var labels []string
	for idx, name := range tr.Labels {
		labels = append(labels, fmt.Sprintf("%d=%s", idx, name))
	}
	sort.Strings(labels)
	if len(labels) > 0 {
		fmt.Printf("shards: %v\n", labels)
	}

	// Per-component (category) virtual-time breakdown. Span times within a
	// component overlap freely (a DMA span covers its per-message
	// instants), so the busy column is an upper bound on exclusive time.
	fmt.Printf("\nper-component breakdown (span virtual time; %% of trace window)\n")
	fmt.Printf("  %-10s %10s %14s %8s\n", "component", "records", "busy", "%")
	var cats []obs.Cat
	for c := range catRecords {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	for _, c := range cats {
		pct := 0.0
		if span > 0 {
			pct = 100 * float64(catTotal[c]) / float64(span)
		}
		fmt.Printf("  %-10s %10d %14v %7.2f%%\n", c, catRecords[c], catTotal[c], pct)
	}

	// Per-name rows, grouped under their component.
	fmt.Printf("\nper-event breakdown\n")
	fmt.Printf("  %-18s %-10s %8s %14s %14s\n", "name", "component", "count", "total", "longest")
	var names []*nameStat
	for _, st := range byName {
		names = append(names, st)
	}
	sort.Slice(names, func(i, j int) bool {
		if names[i].cat != names[j].cat {
			return names[i].cat < names[j].cat
		}
		return names[i].name < names[j].name
	})
	for _, st := range names {
		fmt.Printf("  %-18s %-10s %8d %14v %14v\n", st.name, st.cat, st.count, st.total, st.longest)
	}

	// Longest individual spans.
	var spans []obs.Record
	for _, r := range tr.Records {
		if r.Kind == obs.KindSpan {
			spans = append(spans, r)
		}
	}
	if len(spans) == 0 || top <= 0 {
		return
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Dur != spans[j].Dur {
			return spans[i].Dur > spans[j].Dur
		}
		if spans[i].At != spans[j].At {
			return spans[i].At < spans[j].At
		}
		return spans[i].Shard < spans[j].Shard
	})
	if top > len(spans) {
		top = len(spans)
	}
	fmt.Printf("\ntop %d spans\n", top)
	fmt.Printf("  %-18s %-12s %14s %14s %10s\n", "name", "shard", "start", "duration", "arg")
	for _, r := range spans[:top] {
		fmt.Printf("  %-18s %-12s %14v %14v %10d\n",
			r.Name, shardLabel(tr, r.Shard), r.At, r.Dur, r.Arg)
	}
}

// summarizeSyscalls prints the device-syscall section when the trace
// holds syscall-component records: the lifecycle funnel, the per-mode
// host dispatch breakdown (syscall.exec.<mode> spans), the per-op
// device-observed latency (syscall.call.<op> spans), and the top
// slowest individual calls.
func summarizeSyscalls(tr *obs.ChromeTrace, top int) {
	type opStat struct {
		name    string
		count   int
		total   sim.Time
		longest sim.Time
	}
	counts := map[string]int{}
	modes := map[string]*opStat{}
	ops := map[string]*opStat{}
	var calls []obs.Record
	tally := func(m map[string]*opStat, key string, r *obs.Record) {
		st := m[key]
		if st == nil {
			st = &opStat{name: key}
			m[key] = st
		}
		st.count++
		st.total += r.Dur
		if r.Dur > st.longest {
			st.longest = r.Dur
		}
	}
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Cat != obs.CatSyscall {
			continue
		}
		switch {
		case r.Kind == obs.KindInstant:
			counts[r.Name]++
		case strings.HasPrefix(r.Name, "syscall.exec."):
			tally(modes, strings.TrimPrefix(r.Name, "syscall.exec."), r)
		case strings.HasPrefix(r.Name, "syscall.call."):
			tally(ops, strings.TrimPrefix(r.Name, "syscall.call."), r)
			calls = append(calls, *r)
		}
	}
	if len(counts) == 0 && len(modes) == 0 && len(ops) == 0 {
		return
	}

	fmt.Printf("\ndevice syscalls\n")
	fmt.Printf("  issued %d, dispatched %d, completed %d; reissued %d, deduped %d, orphaned %d\n",
		counts["syscall.issue"], counts["syscall.dispatch"], counts["syscall.complete"],
		counts["syscall.reissue"], counts["syscall.dedup"], counts["syscall.orphan"])

	rows := func(m map[string]*opStat) []*opStat {
		out := make([]*opStat, 0, len(m))
		for _, st := range m {
			out = append(out, st)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
		return out
	}
	if len(modes) > 0 {
		fmt.Printf("\n  host dispatch by mode (exec spans)\n")
		fmt.Printf("  %-8s %8s %14s %14s %14s\n", "mode", "calls", "busy", "mean", "longest")
		for _, st := range rows(modes) {
			fmt.Printf("  %-8s %8d %14v %14v %14v\n",
				st.name, st.count, st.total, st.total/sim.Time(st.count), st.longest)
		}
	}
	if len(ops) > 0 {
		fmt.Printf("\n  device-observed completion latency by op (call spans)\n")
		fmt.Printf("  %-8s %8s %14s %14s %14s\n", "op", "calls", "total", "mean", "longest")
		for _, st := range rows(ops) {
			fmt.Printf("  %-8s %8d %14v %14v %14v\n",
				st.name, st.count, st.total, st.total/sim.Time(st.count), st.longest)
		}
	}

	if top <= 0 || len(calls) == 0 {
		return
	}
	sort.Slice(calls, func(i, j int) bool {
		if calls[i].Dur != calls[j].Dur {
			return calls[i].Dur > calls[j].Dur
		}
		if calls[i].At != calls[j].At {
			return calls[i].At < calls[j].At
		}
		return calls[i].Shard < calls[j].Shard
	})
	if top > len(calls) {
		top = len(calls)
	}
	fmt.Printf("\n  top %d slowest syscalls (arg is the per-issuer call seq)\n", top)
	fmt.Printf("  %-18s %-12s %14s %14s %10s\n", "name", "shard", "issued", "latency", "call")
	for _, r := range calls[:top] {
		fmt.Printf("  %-18s %-12s %14v %14v %10d\n",
			r.Name, shardLabel(tr, r.Shard), r.At, r.Dur, r.Arg)
	}
}

// criticalPath prints the chan.send → chan.delivered window of one
// message and every channel/bus/host span overlapping it on the same
// shard.
func criticalPath(tr *obs.ChromeTrace, id int64) {
	var send, delivered *obs.Record
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Arg != id {
			continue
		}
		switch r.Name {
		case "chan.send":
			if send == nil {
				send = r
			}
		case "chan.delivered":
			if delivered == nil {
				delivered = r
			}
		}
	}
	if send == nil {
		log.Fatalf("hydra-trace: no chan.send record for message id %d", id)
	}
	if delivered == nil {
		log.Fatalf("hydra-trace: message id %d was sent but never delivered in this trace", id)
	}
	t0, t1 := send.At, delivered.At
	fmt.Printf("message %d: sent %v, delivered %v — %v in flight (shard %s)\n",
		id, t0, t1, t1-t0, shardLabel(tr, send.Shard))
	fmt.Printf("  %10s %-18s %-10s %14s %10s\n", "t-send", "name", "component", "duration", "arg")
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Shard != send.Shard {
			continue
		}
		include := false
		switch {
		case r.Kind == obs.KindSpan && r.At <= t1 && r.At+r.Dur >= t0:
			// A span overlapping the flight window: the tx prep, DMA, bus
			// transfer, interrupt segment, and dispatch legs of this (or a
			// concurrently batched) message.
			include = r.Cat == obs.CatChannel || r.Cat == obs.CatBus || r.Cat == obs.CatHost
		case r.Kind == obs.KindInstant && r.Arg == id && r.At >= t0 && r.At <= t1:
			include = true
		case r == send || r == delivered:
			include = true
		}
		if !include {
			continue
		}
		fmt.Printf("  %10v %-18s %-10s %14v %10d\n",
			sim.Time(r.At-t0), r.Name, r.Cat, r.Dur, r.Arg)
	}
}

func shardLabel(tr *obs.ChromeTrace, idx int32) string {
	if name, ok := tr.Labels[idx]; ok {
		return name
	}
	return fmt.Sprintf("#%d", idx)
}
