// Command docslint is the repository's documentation linter, run by CI's
// docs-lint step alongside go vet. It enforces two invariants:
//
//  1. Every relative markdown link in the top-level docs (README.md,
//     DESIGN.md, CHANGES.md, ROADMAP.md, cmd/README.md and every
//     examples/*/README.md) resolves to a file or directory that
//     actually exists — stale links are the fastest way for a docs pass
//     to rot.
//  2. Every package under internal/ carries a package-level doc comment in
//     at least one of its files, so `go doc` always has something to say
//     about every layer of the architecture.
//
// Usage:
//
//	docslint [-root dir]
//
// Exits non-zero with one line per violation; prints "docslint: ok" with
// counters when the tree is clean.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// linkRe matches inline markdown links [text](target). Reference-style
// links are rare in this repo and intentionally out of scope.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	root := flag.String("root", ".", "repository root to lint")
	flag.Parse()

	var problems []string
	links := checkLinks(*root, &problems)
	pkgs := checkPackageDocs(*root, &problems)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docslint:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("docslint: ok (%d links across the doc set, %d internal packages documented)\n",
		links, pkgs)
}

// docFiles lists the markdown files under lint.
func docFiles(root string) []string {
	files := []string{"README.md", "DESIGN.md", "CHANGES.md", "ROADMAP.md",
		filepath.Join("cmd", "README.md")}
	matches, _ := filepath.Glob(filepath.Join(root, "examples", "*", "README.md"))
	sort.Strings(matches)
	out := make([]string, 0, len(files)+len(matches))
	for _, f := range files {
		out = append(out, filepath.Join(root, f))
	}
	return append(out, matches...)
}

// checkLinks validates every relative link target, returning how many
// links it examined.
func checkLinks(root string, problems *[]string) int {
	total := 0
	for _, path := range docFiles(root) {
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) && filepath.Base(path) != "README.md" {
				continue // optional doc
			}
			*problems = append(*problems, fmt.Sprintf("%s: %v", path, err))
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			total++
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue // external or intra-document
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				*problems = append(*problems,
					fmt.Sprintf("%s: broken link %q (%s does not exist)", path, m[1], resolved))
			}
		}
	}
	return total
}

// checkPackageDocs walks internal/ and requires a package doc comment in
// at least one non-test file per package, returning the package count.
func checkPackageDocs(root string, problems *[]string) int {
	dirs, err := filepath.Glob(filepath.Join(root, "internal", "*"))
	if err != nil {
		*problems = append(*problems, err.Error())
		return 0
	}
	sort.Strings(dirs)
	count := 0
	for _, dir := range dirs {
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			continue
		}
		count++
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			*problems = append(*problems, fmt.Sprintf("%s: %v", dir, err))
			continue
		}
		documented := false
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
				}
			}
		}
		if !documented {
			*problems = append(*problems,
				fmt.Sprintf("%s: package has no package-level doc comment in any file", dir))
		}
	}
	return count
}
