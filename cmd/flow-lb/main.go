// Command flow-lb drives the X12 million-flow data plane: a
// load-balancer/firewall whose NIC-resident Offcodes run a match-action
// pipeline over a hash-sharded flow table, fed by an open-loop generator
// with Poisson arrivals, heavy-tailed Zipf flow sizes and constant churn.
//
// With no mode flag it runs one weak-scaled cell at the chosen host
// count and prints its row: sustained msgs/s, windowed flow-table hit
// rate, p50/p99 send→processed latency, and the conntrack/verdict/log
// ledgers. -curve runs the full 1→8 host scaling grid plus the
// hot-swap churn soak (serial ≡ parallel verified bit for bit) and
// prints the evaluation-style table; -soak runs only the soak leg.
//
// Usage:
//
//	flow-lb [-hosts N] [-workers N] [-seed N] [-curve] [-soak]
//
// Examples:
//
//	flow-lb -hosts 4                 # one cell: 4 hosts, 16 shards, 320k pkts/s
//	flow-lb -curve                   # the X12 scaling headline + soak
//	flow-lb -soak                    # churn across a mid-run shard hot-swap
package main

import (
	"flag"
	"fmt"
	"log"

	"hydra/internal/experiments"
)

func main() {
	hosts := flag.Int("hosts", 4, "host count for a single cell (1 XScale NIC each)")
	workers := flag.Int("workers", 4, "window worker goroutines (1 = serial; results identical)")
	seed := flag.Int64("seed", experiments.DefaultSeed, "simulation seed")
	curve := flag.Bool("curve", false, "run the full 1→8 host weak-scaling grid plus the soak")
	soak := flag.Bool("soak", false, "run only the churn-under-hot-swap soak")
	flag.Parse()

	switch {
	case *curve:
		res, err := experiments.RunDataPlane(*seed, *workers)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.CheckDataPlaneShape(res); err != nil {
			log.Fatal(err)
		}
		fmt.Print(res.Render())

	case *soak:
		s, err := experiments.RunX12Soak(*seed, *workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("flow-lb soak: %d shards over %d hosts at peak rate across a shard-00 hot-swap\n",
			s.Shards, s.Hosts)
		fmt.Printf("  packets: %d offered = %d processed + %d queue drops (lost %d, shed %d, misrouted %d)\n",
			s.Offered, s.Processed, s.QueueDrops, s.Lost, s.Shed, s.Misrouted)
		fmt.Printf("  swap: %.3f ms window, %d held/replayed, %d queued packets carried, %d processed after\n",
			s.SwapWindowMS, s.SwapReplayed, s.QueuedAtSwap, s.PostSwapProcessed)
		fmt.Printf("  state: checkpoint digest %x == restore digest %x\n", s.CkptDigest, s.RestoreDigest)
		fmt.Printf("  churn: %d evictions, %d expirations, %d policy drops; log ledger %d issued == %d host lines\n",
			s.Evicted, s.Expired, s.PolicyDrops, s.Logged, s.LogLines)

	default:
		if *hosts < 1 {
			log.Fatal("flow-lb: -hosts must be ≥ 1")
		}
		row, err := experiments.RunX12Cell(*seed, *hosts, *workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("flow-lb: %d shards over %d hosts, %d pkts/s offered (0.8 per-NIC utilization)\n",
			row.Shards, row.Hosts, row.OfferedRateHz)
		fmt.Printf("  sustained: %.0f msgs/s in the %v window; hit rate %.4f; latency p50 %.1f µs, p99 %.1f µs\n",
			row.MsgsPerSec, experiments.X12Window, row.HitRate, row.P50LatUS, row.P99LatUS)
		fmt.Printf("  packets: %d offered = %d processed + %d queue drops (shed %d, misrouted %d)\n",
			row.Offered, row.Processed, row.QueueDrops, row.Shed, row.Misrouted)
		fmt.Printf("  conntrack: %d lookups = %d hits + %d misses; %d inserts, %d evicted, %d expired\n",
			row.Lookups, row.Hits, row.Misses, row.Inserts, row.Evicted, row.Expired)
		fmt.Printf("  verdicts: %d forwarded, %d rewritten, %d counted, %d dropped\n",
			row.Forwarded, row.Rewritten, row.Counted, row.PolicyDrops)
		fmt.Printf("  flows: %d spawned, %d retired (churn); stream digest %x\n",
			row.FlowsSpawned, row.FlowsRetired, row.GenDigest)
		fmt.Printf("  log ledger: %d fire-forget syscalls == %d host log lines\n",
			row.Logged, row.LogLines)
	}
}
