// Benchmarks regenerating every table and figure in the paper's evaluation
// (see DESIGN.md's per-experiment index), plus microbenchmarks of the
// framework's hot paths. Figure/table benches report the headline measured
// values as custom metrics so `go test -bench` output documents the
// reproduction directly.
package hydra_test

import (
	"testing"

	"hydra/internal/channel"
	"hydra/internal/device"
	"hydra/internal/experiments"
	"hydra/internal/ilp"
	"hydra/internal/mpeg"
	"hydra/internal/netmodel"
	"hydra/internal/objfile"
	"hydra/internal/sim"
	"hydra/internal/testbed"
	"hydra/internal/tivopc"
)

// --- Figure 1 ---

func BenchmarkFigure1Transmit(b *testing.B) {
	m := netmodel.Foong2003()
	var last float64
	for i := 0; i < b.N; i++ {
		for _, p := range m.Series(netmodel.Transmit) {
			last = p.Ratio
		}
	}
	b.ReportMetric(m.GHzPerGbps(netmodel.Transmit, 1024), "GHz/Gbps@1kB")
	b.ReportMetric(m.GHzPerGbps(netmodel.Transmit, 64), "GHz/Gbps@64B")
	_ = last
}

func BenchmarkFigure1Receive(b *testing.B) {
	m := netmodel.Foong2003()
	var last float64
	for i := 0; i < b.N; i++ {
		for _, p := range m.Series(netmodel.Receive) {
			last = p.Ratio
		}
	}
	b.ReportMetric(m.GHzPerGbps(netmodel.Receive, 1024), "GHz/Gbps@1kB")
	b.ReportMetric(m.GHzPerGbps(netmodel.Receive, 64), "GHz/Gbps@64B")
	_ = last
}

// --- Table 2 / Figure 9 ---

func BenchmarkTable2Jitter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable2Figure9(experiments.DefaultSeed, experiments.QuickDuration)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				switch row.Scenario {
				case "Simple Server":
					b.ReportMetric(row.Measured.Median, "simple-median-ms")
				case "Sendfile Server":
					b.ReportMetric(row.Measured.Median, "sendfile-median-ms")
				case "Offloaded Server":
					b.ReportMetric(row.Measured.Median, "offloaded-median-ms")
					b.ReportMetric(row.Measured.StdDev, "offloaded-stddev-ms")
				}
			}
		}
	}
}

func BenchmarkFigure9JitterDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable2Figure9(experiments.DefaultSeed, experiments.QuickDuration)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.RenderFigure9()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// --- Table 3 / Figure 10 ---

func BenchmarkTable3ServerCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable3Figure10(experiments.DefaultSeed, experiments.QuickDuration)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				switch row.Scenario {
				case "Idle":
					b.ReportMetric(row.CPU.Mean, "idle-cpu-pct")
				case "Simple Server":
					b.ReportMetric(row.CPU.Mean, "simple-cpu-pct")
				case "Sendfile Server":
					b.ReportMetric(row.CPU.Mean, "sendfile-cpu-pct")
				case "Offloaded Server":
					b.ReportMetric(row.CPU.Mean, "offloaded-cpu-pct")
				}
			}
		}
	}
}

func BenchmarkFigure10L2Slowdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable3Figure10(experiments.DefaultSeed, experiments.QuickDuration)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				if row.Scenario == "Simple Server" {
					b.ReportMetric(row.L2Slowdown, "simple-l2-slowdown")
				}
				if row.Scenario == "Offloaded Server" {
					b.ReportMetric(row.L2Slowdown, "offloaded-l2-slowdown")
				}
			}
		}
	}
}

// --- Table 4 / X1 ---

func BenchmarkTable4ClientCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable4(experiments.DefaultSeed, experiments.QuickDuration)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				switch row.Scenario {
				case "User-space Client":
					b.ReportMetric(row.CPU.Mean, "user-cpu-pct")
					b.ReportMetric(100*row.MissDelta, "user-l2-delta-pct")
				case "Offloaded Client":
					b.ReportMetric(row.CPU.Mean, "offloaded-cpu-pct")
				}
			}
		}
	}
}

func BenchmarkClientL2Misses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run, err := tivopc.RunClientScenario(tivopc.UserspaceClient, experiments.DefaultSeed, experiments.QuickDuration)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(run.L2Misses), "l2-misses")
			b.ReportMetric(float64(run.FramesDecoded), "frames")
		}
	}
}

// --- X2–X4 ablations ---

func BenchmarkLayoutILPvsGreedy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunLayoutAblation(20, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*a.MeanGapFrac, "greedy-gap-pct")
			b.ReportMetric(a.MeanILPNodes, "ilp-nodes")
		}
	}
}

func BenchmarkILPSolverScaling(b *testing.B) {
	// 12 offcodes × 4 targets with gang edges and budgets.
	build := func() *ilp.Problem {
		const N, K = 12, 4
		idx := func(n, k int) int { return n*K + k }
		p := &ilp.Problem{NumVars: N * K, Objective: make([]float64, N*K)}
		for n := 0; n < N; n++ {
			for k := 1; k < K; k++ {
				p.Objective[idx(n, k)] = float64(1 + n%3)
			}
			c := ilp.Constraint{Coeffs: map[int]float64{}, Sense: ilp.EQ, RHS: 1}
			for k := 0; k < K; k++ {
				c.Coeffs[idx(n, k)] = 1
			}
			p.AddConstraint(c)
		}
		for k := 1; k < K; k++ {
			c := ilp.Constraint{Coeffs: map[int]float64{}, Sense: ilp.LE, RHS: 4}
			for n := 0; n < N; n++ {
				c.Coeffs[idx(n, k)] = 1
			}
			p.AddConstraint(c)
		}
		return p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ilp.Solve(build(), ilp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChannelZeroCopyVsStaged(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunChannelAblation(8192, 64, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(a.StagedTime)/float64(a.ZeroCopyTime), "staged-vs-zc-slowdown")
		}
	}
}

func BenchmarkLoaderHostVsDevice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunLoaderAblation(32<<10, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(a.DeviceLink)/float64(a.HostLink), "devlink-vs-hostlink-slowdown")
		}
	}
}

// --- X6: NIC failover ---

func BenchmarkX6Failover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFailover(experiments.DefaultSeed, experiments.QuickDuration)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				if row.Scenario == "Single NIC Crash" {
					b.ReportMetric(row.DetectMS, "detect-ms")
					b.ReportMetric(row.MigrateMS, "migrate-ms")
					b.ReportMetric(row.Availability, "availability")
				}
			}
		}
	}
}

// --- X7: channel saturation ---

func BenchmarkX7Saturation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSaturation(experiments.DefaultSeed, experiments.X7Duration)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				if row.RateHz != 50_000 {
					continue
				}
				switch row.Batch {
				case 1:
					b.ReportMetric(row.CyclesPerMsg, "permsg-cycles")
					b.ReportMetric(row.MeanLatencyMS, "permsg-lat-ms")
				case 32:
					b.ReportMetric(row.CyclesPerMsg, "batch32-cycles")
					b.ReportMetric(row.MeanLatencyMS, "batch32-lat-ms")
				}
			}
		}
	}
}

func BenchmarkX8Contention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunContention(experiments.DefaultSeed, experiments.X8Duration)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckContentionShape(r); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				if row.Apps == 12 && !row.TightQuota && row.Resolver == 0 {
					b.ReportMetric(float64(row.Admitted), "admitted")
					b.ReportMetric(float64(row.Rejected), "rejected")
					b.ReportMetric(float64(row.MinMsgs), "msgs-per-app")
					b.ReportMetric(float64(row.ReclaimedHostBytes), "reclaimed-B")
				}
			}
		}
	}
}

func BenchmarkX9Cluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunCluster(experiments.DefaultSeed, experiments.X9Duration)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckClusterShape(r); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				switch row.Scenario {
				case "1 host":
					b.ReportMetric(row.MsgsPerSec, "msgs/s-1h")
				case "4 hosts":
					b.ReportMetric(row.MsgsPerSec, "msgs/s-4h")
				case "4 hosts, kill h3":
					b.ReportMetric(row.MigrationMS, "migration-ms")
				}
			}
		}
	}
}

// --- Framework microbenchmarks ---

func BenchmarkChannelMessageHostToDevice(b *testing.B) {
	sys, err := testbed.New(1, testbed.Spec{
		Name: "bench-1nic",
		Hosts: []testbed.HostSpec{{
			Name:    "host",
			Devices: []device.Config{device.XScaleNIC("nic0")},
		}},
	})
	if err != nil {
		b.Fatal(err)
	}
	eng, nic := sys.Eng, sys.Device("nic0")
	host, bsys := sys.Host("host").Machine, sys.Host("host").Bus
	app := channel.HostEndpoint(host, "app")
	ch, err := channel.New(eng, bsys, channel.DefaultConfig(), app)
	if err != nil {
		b.Fatal(err)
	}
	oc := channel.DeviceEndpoint(nic, "oc")
	if err := ch.Connect(oc); err != nil {
		b.Fatal(err)
	}
	oc.InstallCallHandler(func([]byte) {})
	payload := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := app.Write(payload); err != nil {
			b.Fatal(err)
		}
		eng.RunAll()
	}
}

func BenchmarkLinker(b *testing.B) {
	obj := objfile.Synthesize("bench", 1, 64<<10,
		[]string{"a.f", "b.f", "c.f", "d.f", "e.f", "f.f", "g.f", "h.f"})
	exports := map[string]uint64{
		"a.f": 1, "b.f": 2, "c.f": 3, "d.f": 4, "e.f": 5, "f.f": 6, "g.f": 7, "h.f": 8,
	}
	b.SetBytes(int64(obj.Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := objfile.Link(obj, 0x1000, exports); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHOBJEncodeDecode(b *testing.B) {
	obj := objfile.Synthesize("bench", 1, 16<<10, []string{"a.f", "b.f"})
	b.SetBytes(int64(obj.Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := objfile.Decode(obj.Encode()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMPEGEncode(b *testing.B) {
	cfg := mpeg.Config{W: 320, H: 240, GOPSize: 12, BGap: 2}
	frames := mpeg.GenerateVideo(cfg, 12)
	b.SetBytes(int64(12 * cfg.W * cfg.H))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mpeg.Encode(cfg, frames); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMPEGDecode(b *testing.B) {
	cfg := mpeg.Config{W: 320, H: 240, GOPSize: 12, BGap: 2}
	stream, err := mpeg.Encode(cfg, mpeg.GenerateVideo(cfg, 12))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(stream)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := mpeg.NewDecoder()
		got := dec.Feed(stream)
		got = append(got, dec.Flush()...)
		if len(got) != 12 {
			b.Fatalf("decoded %d frames", len(got))
		}
	}
}

// BenchmarkSimulationEngine times the event hot path: one engine,
// b.N chained fire→reschedule steps. Construction happens once, outside
// the timed region, so ns/op and allocs/op are per event.
func BenchmarkSimulationEngine(b *testing.B) {
	eng := sim.NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < b.N {
			eng.Schedule(10, chain)
		}
	}
	eng.Schedule(1, chain)
	eng.RunAll()
}

// BenchmarkSimulationEngineChurn is the schedule/cancel-heavy variant:
// each fired event plants four far-horizon decoys (timeouts that never
// fire) and cancels them immediately, over a wide 100k-event pending
// set. This is the workload that rewards eager cancel removal and slot
// recycling in the ladder queue.
func BenchmarkSimulationEngineChurn(b *testing.B) {
	eng := sim.NewEngine(1)
	const pending = 100_000
	n := 0
	var tick func()
	tick = func() {
		n++
		for d := 0; d < 4; d++ {
			decoy := eng.Schedule(sim.Time(1_000_000_000+n%997), func() {})
			decoy.Cancel()
		}
		if n < b.N {
			eng.Schedule(sim.Time(10+n%89), tick)
		}
	}
	for i := 0; i < pending; i++ {
		// Far-spread timers keep the pending set wide for the whole run.
		eng.Schedule(sim.Time(1+i)*1000, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.Schedule(1, tick)
	eng.Run(eng.Now() + 1_000_000)
	for n < b.N {
		// Horizon exhausted before b.N events: extend in fixed strides.
		eng.Run(eng.Now() + 1_000_000)
	}
}
