// README contract test: the quickstart snippet must compile — and run —
// exactly as written. The snippet is extracted from the first fenced Go
// block of README.md into a throwaway module that depends on this
// repository via a replace directive, so any façade drift that would break
// a copy-pasting reader breaks CI instead.
package hydra_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var goFence = regexp.MustCompile("(?s)```go\n(.*?)```")

func TestReadmeQuickstartCompilesAndRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping README build test in -short mode")
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("README.md must exist at the repo root: %v", err)
	}
	m := goFence.FindSubmatch(readme)
	if m == nil {
		t.Fatal("README.md has no ```go fenced quickstart block")
	}
	snippet := m[1]
	if !strings.Contains(string(snippet), "package main") {
		t.Fatal("README quickstart is not a complete main package")
	}

	repoRoot, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	gomod := fmt.Sprintf("module readmequickstart\n\ngo 1.24\n\nrequire hydra v0.0.0\n\nreplace hydra => %s\n", repoRoot)
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), snippet, 0o644); err != nil {
		t.Fatal(err)
	}

	build := exec.Command("go", "build", "-o", filepath.Join(dir, "quickstart"), ".")
	build.Dir = dir
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("README quickstart does not compile as written: %v\n%s", err, out)
	}
	run := exec.Command(filepath.Join(dir, "quickstart"))
	run.Dir = dir
	out, err := run.CombinedOutput()
	if err != nil {
		t.Fatalf("README quickstart failed at runtime: %v\n%s", err, out)
	}
	for _, want := range []string{"planned: demo.Counter → nic0", "deployed in"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("README quickstart output missing %q:\n%s", want, out)
		}
	}
}
