// Command tivopc runs the paper's case study (§6) end to end on the public
// API: the offloaded Video Server streams the movie from the NAS through
// NIC-resident Offcodes, and the offloaded Video Client multicasts each
// packet over the bus to the GPU (decode + display) and the Smart Disk
// (recording), with the host CPUs untouched — Figure 2's data flow.
package main

import (
	"fmt"
	"log"

	"hydra/internal/sim"
	"hydra/internal/tivopc"
)

func main() {
	const duration = 30 * sim.Second
	tb := tivopc.NewTestbed(42, duration)

	client, err := tivopc.StartClient(tb, tivopc.OffloadedClient)
	if err != nil {
		log.Fatal(err)
	}
	server, err := tivopc.StartServer(tb, tivopc.OffloadedServer, duration)
	if err != nil {
		log.Fatal(err)
	}
	serverCPU := tb.Server.SampleUtilization(5 * sim.Second)
	clientCPU := tb.Client.SampleUtilization(5 * sim.Second)

	tb.Eng.Run(duration)

	if err := server.DeployErr(); err != nil {
		log.Fatal(err)
	}
	if err := client.DeployErr(); err != nil {
		log.Fatal(err)
	}
	if err := client.VerifyPlacement(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("TiVoPC offloaded pipeline (Figure 2):")
	fmt.Printf("  server sent        %d chunks (1 kB / 5 ms)\n", server.TotalSent())
	gaps := client.Arrivals.Gaps()
	var mean float64
	for _, g := range gaps {
		mean += g
	}
	if len(gaps) > 0 {
		mean /= float64(len(gaps))
	}
	fmt.Printf("  client arrivals    %d packets, mean gap %.3f ms\n", len(gaps)+1, mean)
	fmt.Printf("  GPU decoded        %d frames (%d verified pixel-exact, %d failed)\n",
		client.Decoder.Frames, client.Display.VerifiedOK, client.Display.VerifyFail)
	fmt.Printf("  smart disk stored  %d bytes to NAS %s\n", client.DiskFile.Written, tivopc.RecordPath)
	fmt.Printf("  placements: streamer=%s decoder/display=%s file=%s\n",
		"client-nic", "client-gpu", "client-disk")

	sMean, cMean := meanOf(serverCPU.Samples), meanOf(clientCPU.Samples)
	fmt.Printf("  host CPU:  server %.2f%%  client %.2f%%  (both at idle level)\n", sMean, cMean)
	fmt.Printf("  energy: NIC %.2f J, GPU %.2f J, disk %.2f J over %v\n",
		tb.ClientNIC.EnergyJoules(), tb.ClientGPU.EnergyJoules(),
		tb.ClientDisk.EnergyJoules(), duration)
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
