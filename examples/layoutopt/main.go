// Command layoutopt demonstrates §5: a multi-application offloading layout
// whose greedy resolution is suboptimal, solved to proven optimality with
// the ILP formulation under the Maximize-Bus-Usage objective.
package main

import (
	"fmt"
	"log"

	"hydra/internal/device"
	"hydra/internal/guid"
	"hydra/internal/layout"
	"hydra/internal/odf"
)

func main() {
	// Three devices with bus-bandwidth budgets (the §5 capability matrix).
	targets := []layout.Target{
		{Name: "nic0", Class: device.Class{ID: 1, Name: "Network Device"}, BusCapacity: 11},
		{Name: "disk0", Class: device.Class{ID: 2, Name: "Storage Device"}, BusCapacity: 9},
		{Name: "gpu0", Class: device.Class{ID: 3, Name: "Display Device"}, BusCapacity: 6},
	}
	g := layout.NewGraph(targets...)

	// Two applications sharing Offcodes: a streaming stack on the NIC, an
	// indexing stack on the disk, a GPU renderer, and a shared compression
	// component any device could host. The greedy resolver fills the NIC
	// with the largest components and then cannot satisfy the renderer's
	// Asymmetric-Gang dependency on the compressor; the ILP trades one NIC
	// slot to enable both.
	type spec struct {
		name   string
		price  float64
		compat []bool // host, nic, disk, gpu
	}
	specs := []spec{
		{"app1.Socket", 6, []bool{true, true, false, false}},
		{"app1.Filter", 5, []bool{true, true, false, false}},
		{"app1.Stats", 5, []bool{true, true, false, false}},
		{"app2.Scanner", 5, []bool{true, false, true, false}},
		{"app2.Index", 4, []bool{true, false, true, false}},
		{"shared.Compress", 4, []bool{true, true, true, true}},
		{"app2.Render", 6, []bool{true, false, false, true}},
	}
	ids := map[string]int{}
	for i, s := range specs {
		n, err := g.AddNode(s.name, guid.GUID(i+1), s.price, s.compat)
		if err != nil {
			log.Fatal(err)
		}
		ids[s.name] = n
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(g.AddEdge(ids["app1.Socket"], ids["app1.Filter"], odf.Link))
	must(g.AddEdge(ids["app2.Scanner"], ids["app2.Index"], odf.Pull))
	must(g.AddEdge(ids["app2.Render"], ids["shared.Compress"], odf.AsymmetricGang))

	fmt.Println("Offloading layout optimization (§5, Maximize Bus Usage):")
	fmt.Printf("  %d Offcodes, %d constraints, budgets nic=11 disk=9 gpu=6\n\n",
		len(g.Nodes), len(g.Edges))

	greedy, err := g.SolveGreedy(layout.MaximizeBusUsage)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy:  objective %.0f\n", g.ObjectiveValue(greedy, layout.MaximizeBusUsage))
	printPlacement(g, greedy)

	ilp, sol, err := g.SolveILP(layout.MaximizeBusUsage)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nILP:     objective %.0f (proven optimal, %d B&B nodes)\n", sol.Objective, sol.Nodes)
	printPlacement(g, ilp)

	gap := sol.Objective - g.ObjectiveValue(greedy, layout.MaximizeBusUsage)
	fmt.Printf("\ngreedy left %.0f units of bus bandwidth unexploited — \"for complex\n"+
		"scenarios a greedy solution is not always optimal\" (§5).\n", gap)
}

func printPlacement(g *layout.Graph, p layout.Placement) {
	for n := range g.Nodes {
		fmt.Printf("    %-16s → %s\n", g.Nodes[n].BindName, g.Targets[p[n]].Name)
	}
}
