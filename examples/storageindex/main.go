// Command storageindex demonstrates the paper's "Advanced Storage Services"
// direction (§8) and its motivating example from §1.1: "filesystem related
// functionality such as indexing or searching could be offloaded to a
// programmable disk controller. Leveraging the proximity between the
// computational task and the data on which it operates may boost the
// system's performance and reduce the load on the host processor".
//
// An Index Offcode deployed to the smart disk scans a document set where it
// lives and returns only the term counts; the host-side alternative pulls
// every byte across the bus and scans on the CPU. The example reports both
// costs.
package main

import (
	"fmt"
	"log"
	"strings"

	"hydra"
	"hydra/internal/cache"
	"hydra/internal/core"
	"hydra/internal/sim"
)

// indexOffcode scans documents stored on its device and counts term hits.
type indexOffcode struct {
	docs  [][]byte
	term  string
	ctx   *core.Context
	Hits  int
	Done  bool
	Bytes int
}

func (o *indexOffcode) Initialize(ctx *core.Context) error { o.ctx = ctx; return nil }
func (o *indexOffcode) Stop() error                        { return nil }

func (o *indexOffcode) Start() error {
	// Scan on the device, near the data: ~2 cycles/byte on the embedded
	// core, zero bus traffic, zero host cycles.
	var scan func(i int)
	scan = func(i int) {
		if i == len(o.docs) {
			o.Done = true
			return
		}
		doc := o.docs[i]
		o.Bytes += len(doc)
		o.ctx.Device.Exec(uint64(2*len(doc)), func() {
			o.Hits += strings.Count(string(doc), o.term)
			scan(i + 1)
		})
	}
	scan(0)
	return nil
}

const indexODF = `<offcode>
  <package><bindname>fs.Index</bindname><GUID>8080</GUID></package>
  <targets>
    <device-class id="0x0002"><name>Storage Device</name></device-class>
    <host-fallback>true</host-fallback>
  </targets>
</offcode>`

func main() {
	const term = "offload"
	docs := corpus(256, term)
	var total int
	for _, d := range docs {
		total += len(d)
	}

	// One declarative topology serves both variants: a host with a smart
	// disk; the offloaded variant adds a HYDRA runtime.
	smartDiskSpec := func(rt *hydra.RuntimeConfig) hydra.TestbedSpec {
		disk := hydra.SmartDiskDevice("disk0")
		disk.LocalMemBytes = 8 << 20 // room for the document set
		var apps []hydra.AppSpec
		if rt != nil {
			apps = []hydra.AppSpec{{Name: "index-app"}}
		}
		return hydra.TestbedSpec{
			Name: "storageindex",
			Hosts: []hydra.HostSpec{{
				Name:    "host",
				Devices: []hydra.DeviceConfig{disk},
				Runtime: rt,
				Apps:    apps,
			}},
		}
	}

	// --- Offloaded: Index Offcode on the smart disk ---
	sys, err := hydra.NewTestbed(3, smartDiskSpec(&hydra.RuntimeConfig{}))
	if err != nil {
		log.Fatal(err)
	}
	eng, host, b := sys.Eng, sys.Host("host").Machine, sys.Host("host").Bus
	dep := sys.Host("host").Depot
	dep.PutFile("/fs/index.odf", []byte(indexODF))
	if err := dep.RegisterObject(hydra.SynthesizeObject("fs.Index", 8080, 8192,
		[]string{"hydra.Heap.Alloc"})); err != nil {
		log.Fatal(err)
	}
	oc := &indexOffcode{docs: docs, term: term}
	dep.RegisterFactory(8080, func() any { return oc })
	plan := sys.Host("host").App("index-app").Plan()
	if err := plan.AddRoot("/fs/index.odf"); err != nil {
		log.Fatal(err)
	}
	plan.Commit(func(d *hydra.Deployment, err error) {
		if err != nil {
			log.Fatal(err)
		}
	})
	eng.RunAll()
	offloadTime := eng.Now()
	offloadHostBusy := host.BusyTime()
	offloadBusBytes := b.Total().Bytes

	// --- Host baseline: pull every document across the bus and scan ---
	sys2, err := hydra.NewTestbed(3, smartDiskSpec(nil))
	if err != nil {
		log.Fatal(err)
	}
	eng2, host2 := sys2.Eng, sys2.Host("host").Machine
	b2, disk2 := sys2.Host("host").Bus, sys2.Device("disk0")
	task := host2.NewTask("grep")
	buf := host2.Alloc(1 << 20)
	hits := 0
	var pull func(i int)
	pull = func(i int) {
		if i == len(docs) {
			return
		}
		doc := docs[i]
		disk2.DMAToHost(buf, len(doc), func() {
			task.TouchRange(cache.Kernel, buf, len(doc))
			task.Compute(uint64(2*len(doc)), func() {
				hits += strings.Count(string(doc), term)
				pull(i + 1)
			})
		})
	}
	pull(0)
	eng2.RunAll()

	if hits != oc.Hits || !oc.Done {
		log.Fatalf("results differ: host=%d device=%d", hits, oc.Hits)
	}
	fmt.Printf("content indexing: %d documents, %d bytes, term %q → %d hits (both paths agree)\n",
		len(docs), total, term, oc.Hits)
	fmt.Printf("  offloaded: %-12v  host CPU %-10v  bus %8d B (deploy only)\n",
		offloadTime, offloadHostBusy, offloadBusBytes)
	fmt.Printf("  host scan: %-12v  host CPU %-10v  bus %8d B (every byte crossed)\n",
		eng2.Now(), host2.BusyTime(), b2.Total().Bytes)
	fmt.Printf("  the offloaded scan kept %.1f MB off the bus and the host CPU idle.\n",
		float64(b2.Total().Bytes-offloadBusBytes)/1e6)
	_ = sim.Second
}

func corpus(n int, term string) [][]byte {
	docs := make([][]byte, n)
	for i := range docs {
		var sb strings.Builder
		for w := 0; w < 600; w++ {
			if (w+i)%17 == 0 {
				sb.WriteString(term)
				sb.WriteByte(' ')
			} else {
				sb.WriteString("word")
				sb.WriteByte(byte('a' + (w+i)%26))
				sb.WriteByte(' ')
			}
		}
		docs[i] = []byte(sb.String())
	}
	return docs
}
