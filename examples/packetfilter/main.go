// Command packetfilter offloads a packet filter/counter to the programmable
// NIC — the generalization of TCP offload the paper argues for in §1.1 —
// and compares it against host-side filtering of the same flow: interrupts,
// DMA crossings and cycles disappear from the host.
//
// This is the two-minute, single-NIC introduction. The production-scale
// version of the same idea is the X12 data plane (internal/experiments,
// cmd/flow-lb): sharded match-action pipelines with connection tracking,
// open-loop flow churn, weak scaling across hosts, and hot-swap under
// load.
package main

import (
	"fmt"
	"log"

	"hydra"
	"hydra/internal/cache"
	"hydra/internal/core"
	"hydra/internal/netsim"
	"hydra/internal/sim"
)

// filterOffcode drops packets whose first byte fails the predicate and
// counts the rest, entirely on the NIC.
type filterOffcode struct {
	ctx     *core.Context
	Passed  int
	Dropped int
}

func (f *filterOffcode) Initialize(ctx *core.Context) error { f.ctx = ctx; return nil }
func (f *filterOffcode) Start() error                       { return nil }
func (f *filterOffcode) Stop() error                        { return nil }

func (f *filterOffcode) Packet(p []byte) {
	f.ctx.Device.Exec(300, func() {
		if len(p) > 0 && p[0]%4 == 0 {
			f.Passed++
		} else {
			f.Dropped++
		}
	})
}

const filterODF = `<offcode>
  <package><bindname>net.Filter</bindname><GUID>4242</GUID></package>
  <targets>
    <device-class id="0x0001"><name>Network Device</name></device-class>
  </targets>
</offcode>`

const packets = 5000

func main() {
	offHost, offPassed := run(true)
	hostBusy, hostPassed := run(false)
	if offPassed != hostPassed {
		log.Fatalf("filters disagree: %d vs %d", offPassed, hostPassed)
	}
	fmt.Printf("packet filter over %d packets (1 kB each):\n", packets)
	fmt.Printf("  offloaded to NIC: host CPU busy %v\n", offHost)
	fmt.Printf("  host filtering:   host CPU busy %v (%.0fx more)\n",
		hostBusy, float64(hostBusy)/float64(max64(int64(offHost), 1)))
	fmt.Printf("  passed %d / dropped %d — identical verdicts on both paths\n",
		offPassed, packets-offPassed)
}

func run(offloaded bool) (sim.Time, int) {
	// One declarative topology for both variants: a host with a
	// programmable NIC, and two free-standing traffic stations. Only the
	// offloaded variant gives the host a HYDRA runtime.
	var rtCfg *hydra.RuntimeConfig
	var apps []hydra.AppSpec
	if offloaded {
		rtCfg = &hydra.RuntimeConfig{}
		apps = []hydra.AppSpec{{Name: "filter-app"}}
	}
	sys, err := hydra.NewTestbed(7, hydra.TestbedSpec{
		Name:     "packetfilter",
		Net:      &hydra.NetSpec{Config: netsim.GigabitSwitched()},
		Stations: []string{"src", "dst"},
		Hosts: []hydra.HostSpec{{
			Name:    "host",
			Devices: []hydra.DeviceConfig{hydra.XScaleNIC("nic0")},
			Runtime: rtCfg,
			Apps:    apps,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	eng, nic := sys.Eng, sys.Device("nic0")
	host := sys.Host("host").Machine
	src, dst := sys.Station("src"), sys.Station("dst")

	passed := 0
	var oc *filterOffcode
	if offloaded {
		dep := sys.Host("host").Depot
		dep.PutFile("/net/filter.odf", []byte(filterODF))
		if err := dep.RegisterObject(hydra.SynthesizeObject("net.Filter", 4242, 2048,
			[]string{"hydra.Heap.Alloc"})); err != nil {
			log.Fatal(err)
		}
		oc = &filterOffcode{}
		dep.RegisterFactory(4242, func() any { return oc })
		plan := sys.Host("host").App("filter-app").Plan()
		if err := plan.AddRoot("/net/filter.odf"); err != nil {
			log.Fatal(err)
		}
		plan.Commit(func(d *hydra.Deployment, err error) {
			if err != nil {
				log.Fatal(err)
			}
			// RX path terminates at the NIC-resident Offcode.
			dst.Bind(9, func(p netsim.Packet) { oc.Packet(p.Payload) })
		})
	} else {
		// Host path: DMA each packet up, interrupt, filter in the kernel.
		task := host.NewTask("filter")
		ring := host.Alloc(64 << 10)
		dst.Bind(9, func(p netsim.Packet) {
			nic.DMAToHost(ring, len(p.Payload), nil)
			nic.InterruptHost(3000, nil)
			data := p.Payload
			task.Syscall(4000, func() {
				task.TouchRange(cache.Kernel, ring, len(data))
				if len(data) > 0 && data[0]%4 == 0 {
					passed++
				}
			})
		})
	}

	// A paced 1 kB flow, starting after deployment has settled.
	for i := 0; i < packets; i++ {
		i := i
		eng.At(5*sim.Millisecond+sim.Time(i)*100*sim.Microsecond, func() {
			payload := make([]byte, 1024)
			payload[0] = byte(i)
			_ = src.Send("dst", 9, payload)
		})
	}
	eng.RunAll()
	if oc != nil {
		passed = oc.Passed
	}
	return host.BusyTime(), passed
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
