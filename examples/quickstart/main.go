// Command quickstart reproduces the paper's Figure 3 flow end to end:
// create an Offcode from its ODF, build a reliable zero-copy unicast
// channel to it via the Channel Executive, install a callback handler, and
// invoke the Offcode through a typed proxy.
package main

import (
	"fmt"
	"log"

	"hydra"
	"hydra/internal/call"
	"hydra/internal/channel"
	"hydra/internal/core"
)

// checksumOffcode implements IChecksum: a classic NIC offload.
type checksumOffcode struct {
	dispatcher *call.Dispatcher
	oob        *hydra.Endpoint
	dataChan   *hydra.Endpoint
}

func (c *checksumOffcode) Initialize(ctx *core.Context) error {
	c.oob = ctx.OOB
	iface, _ := hydra.ParseInterface([]byte(checksumIDL))
	c.dispatcher = call.NewDispatcher(iface)
	return c.dispatcher.Handle("Compute", func(args []any) ([]any, error) {
		data := args[0].([]byte)
		var sum uint64
		for _, b := range data {
			sum += uint64(b)
		}
		return []any{sum}, nil
	})
}

func (c *checksumOffcode) Start() error { return nil }
func (c *checksumOffcode) Stop() error  { return nil }

// ChannelConnected wires each new channel into the dispatcher: Calls in,
// Replies out.
func (c *checksumOffcode) ChannelConnected(ep *hydra.Endpoint) {
	c.dataChan = ep
	ep.InstallCallHandler(func(wire []byte) {
		cl, err := call.Unmarshal(wire)
		if err != nil {
			return
		}
		rep := c.dispatcher.Dispatch(cl)
		out, _ := call.MarshalReply(rep)
		_ = ep.Write(out)
	})
}

const checksumIDL = `<interface name="IChecksum" guid="0x2001">
  <method name="Compute">
    <in name="data" type="bytes"/>
    <out name="sum" type="uint64"/>
  </method>
</interface>`

const checksumODF = `<offcode>
  <package>
    <bindname>hydra.net.utils.Checksum</bindname>
    <GUID>6060843</GUID>
    <interface><include>/offcodes/checksum.idl</include></interface>
  </package>
  <targets>
    <device-class id="0x0001"><name>Network Device</name></device-class>
    <host-fallback>true</host-fallback>
  </targets>
</offcode>`

func main() {
	// Declare the machine — host + programmable NIC on a PCI bus + HYDRA
	// runtime — and build it in one step.
	sys, err := hydra.NewTestbed(1, hydra.TestbedSpec{
		Name: "quickstart",
		Hosts: []hydra.HostSpec{{
			Name:    "host",
			Devices: []hydra.DeviceConfig{hydra.XScaleNIC("nic0")},
			Runtime: &hydra.RuntimeConfig{},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	eng, nic := sys.Eng, sys.Device("nic0")
	b := sys.Host("host").Bus

	// Stock the depot: ODF + interface + binary + behaviour factory.
	dep := sys.Host("host").Depot
	dep.PutFile("/offcodes/checksum.odf", []byte(checksumODF))
	dep.PutFile("/offcodes/checksum.idl", []byte(checksumIDL))
	obj := hydra.SynthesizeObject("hydra.net.utils.Checksum", 6060843, 4096,
		[]string{"hydra.Heap.Alloc", "hydra.Channel.Write"})
	if err := dep.RegisterObject(obj); err != nil {
		log.Fatal(err)
	}
	oc := &checksumOffcode{}
	if err := dep.RegisterFactory(6060843, func() any { return oc }); err != nil {
		log.Fatal(err)
	}

	// "Get our runtime and create the Offcode" (Figure 3).
	rt := sys.Host("host").Runtime

	rt.Deploy("/offcodes/checksum.odf", func(h *hydra.Handle, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("offcode %s deployed to %s (image %d B at %#x)\n",
			h.BindName, h.Device().Name(), h.ImageSize(), h.ImageAddr())

		// "Set up the channel": reliable unicast, zero-copy, sequential.
		cfg := hydra.DefaultChannelConfig()
		cfg.Sync = channel.SyncSequential
		appEnd, _, err := rt.CreateChannel(cfg, h)
		if err != nil {
			log.Fatal(err)
		}

		// "Install a callback handler": invoked whenever data is
		// available, as opposed to requiring the application to poll.
		appEnd.InstallCallHandler(func(wire []byte) {
			rep, err := call.UnmarshalReply(wire)
			if err != nil || rep.Err != "" {
				log.Fatalf("reply error: %v %s", err, rep.Err)
			}
			fmt.Printf("checksum reply: sum = %d (computed on %s at t=%v)\n",
				rep.Results[0], nic.Name(), eng.Now())
		})

		// Invoke transparently through a proxy.
		iface, _ := hydra.ParseInterface([]byte(checksumIDL))
		proxy := call.NewProxy(iface)
		c, err := proxy.Invoke("Compute", []byte("tapping into the fountain of cpus"))
		if err != nil {
			log.Fatal(err)
		}
		wire, _ := call.Marshal(c)
		if err := appEnd.Write(wire); err != nil {
			log.Fatal(err)
		}
	})

	eng.Run(hydra.Seconds(1))
	fmt.Printf("done: NIC busy %v, bus moved %d bytes\n", nic.BusyTime(), b.Total().Bytes)
}
