// Command quickstart reproduces the paper's Figure 3 flow end to end on
// the session API: open an application session, plan and commit the
// Offcode deployment transactionally (with a placement preview before any
// hardware is touched), build a reliable zero-copy unicast channel to it
// via the Channel Executive — owned and quota-accounted by the session —
// install a callback handler, invoke the Offcode through a typed proxy,
// and close the session, which reclaims everything it created.
//
// The next step up from this single-host flow is cluster deployment:
// hydra.NewCluster opens a coordinator over a multi-host testbed, and a
// ClusterPlan shards an Offcode graph across machines with inter-host
// bridge channels and cross-host failover (see DESIGN.md's "Cluster
// layer" and cmd/cluster-shard).
package main

import (
	"fmt"
	"log"

	"hydra"
	"hydra/internal/call"
	"hydra/internal/channel"
	"hydra/internal/core"
)

// checksumOffcode implements IChecksum: a classic NIC offload.
type checksumOffcode struct {
	dispatcher *call.Dispatcher
	oob        *hydra.Endpoint
	dataChan   *hydra.Endpoint
}

func (c *checksumOffcode) Initialize(ctx *core.Context) error {
	c.oob = ctx.OOB
	iface, _ := hydra.ParseInterface([]byte(checksumIDL))
	c.dispatcher = call.NewDispatcher(iface)
	return c.dispatcher.Handle("Compute", func(args []any) ([]any, error) {
		data := args[0].([]byte)
		var sum uint64
		for _, b := range data {
			sum += uint64(b)
		}
		return []any{sum}, nil
	})
}

func (c *checksumOffcode) Start() error { return nil }
func (c *checksumOffcode) Stop() error  { return nil }

// ChannelConnected wires each new channel into the dispatcher: Calls in,
// Replies out.
func (c *checksumOffcode) ChannelConnected(ep *hydra.Endpoint) {
	c.dataChan = ep
	ep.InstallCallHandler(func(wire []byte) {
		cl, err := call.Unmarshal(wire)
		if err != nil {
			return
		}
		rep := c.dispatcher.Dispatch(cl)
		out, _ := call.MarshalReply(rep)
		_ = ep.Write(out)
	})
}

const checksumIDL = `<interface name="IChecksum" guid="0x2001">
  <method name="Compute">
    <in name="data" type="bytes"/>
    <out name="sum" type="uint64"/>
  </method>
</interface>`

const checksumODF = `<offcode>
  <package>
    <bindname>hydra.net.utils.Checksum</bindname>
    <GUID>6060843</GUID>
    <interface><include>/offcodes/checksum.idl</include></interface>
  </package>
  <targets>
    <device-class id="0x0001"><name>Network Device</name></device-class>
    <host-fallback>true</host-fallback>
  </targets>
</offcode>`

func main() {
	// Declare the machine — host + programmable NIC on a PCI bus + HYDRA
	// runtime + our application session — and build it in one step. The
	// session carries quotas: this application may pin at most 2 MB of
	// host memory (its channel ring books 1 MB of that) and hold one
	// channel and one Offcode.
	sys, err := hydra.NewTestbed(1, hydra.TestbedSpec{
		Name: "quickstart",
		Hosts: []hydra.HostSpec{{
			Name:    "host",
			Devices: []hydra.DeviceConfig{hydra.XScaleNIC("nic0")},
			Runtime: &hydra.RuntimeConfig{},
			Apps: []hydra.AppSpec{{
				Name: "checksum-app",
				Config: hydra.AppConfig{
					MemoryQuota:  2 << 20,
					ChannelQuota: 1,
					OffcodeQuota: 1,
				},
			}},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	eng, nic := sys.Eng, sys.Device("nic0")
	b := sys.Host("host").Bus

	// Stock the depot: ODF + interface + binary + behaviour factory.
	dep := sys.Host("host").Depot
	dep.PutFile("/offcodes/checksum.odf", []byte(checksumODF))
	dep.PutFile("/offcodes/checksum.idl", []byte(checksumIDL))
	obj := hydra.SynthesizeObject("hydra.net.utils.Checksum", 6060843, 4096,
		[]string{"hydra.Heap.Alloc", "hydra.Channel.Write"})
	if err := dep.RegisterObject(obj); err != nil {
		log.Fatal(err)
	}
	oc := &checksumOffcode{}
	if err := dep.RegisterFactory(6060843, func() any { return oc }); err != nil {
		log.Fatal(err)
	}

	// "Get our runtime and create the Offcode" (Figure 3) — as a
	// transactional plan on our session. Solve previews the placement
	// before a single byte moves; Commit deploys atomically.
	app := sys.Host("host").App("checksum-app")
	plan := app.Plan()
	if err := plan.AddRoot("/offcodes/checksum.odf"); err != nil {
		log.Fatal(err) // e.g. hydra.ErrDuplicateBind
	}
	preview, err := plan.Solve()
	if err != nil {
		log.Fatal(err)
	}
	for _, asg := range preview.Assignments {
		fmt.Printf("plan: %s → %s\n", asg.BindName, asg.Target)
	}

	plan.Commit(func(dep *hydra.Deployment, err error) {
		if err != nil {
			log.Fatal(err) // a failed commit rolled everything back
		}
		h := dep.Handles["hydra.net.utils.Checksum"]
		fmt.Printf("offcode %s deployed to %s (image %d B at %#x, committed in %v)\n",
			h.BindName, h.Device().Name(), h.ImageSize(), h.ImageAddr(),
			dep.Finished-dep.Started)

		// "Set up the channel": reliable unicast, zero-copy, sequential —
		// owned by the session and charged against its quotas.
		cfg := hydra.DefaultChannelConfig()
		cfg.Sync = channel.SyncSequential
		appEnd, _, err := app.CreateChannel(cfg, h)
		if err != nil {
			log.Fatal(err)
		}

		// "Install a callback handler": invoked whenever data is
		// available, as opposed to requiring the application to poll.
		appEnd.InstallCallHandler(func(wire []byte) {
			rep, err := call.UnmarshalReply(wire)
			if err != nil || rep.Err != "" {
				log.Fatalf("reply error: %v %s", err, rep.Err)
			}
			fmt.Printf("checksum reply: sum = %d (computed on %s at t=%v)\n",
				rep.Results[0], nic.Name(), eng.Now())
		})

		// Invoke transparently through a proxy.
		iface, _ := hydra.ParseInterface([]byte(checksumIDL))
		proxy := call.NewProxy(iface)
		c, err := proxy.Invoke("Compute", []byte("tapping into the fountain of cpus"))
		if err != nil {
			log.Fatal(err)
		}
		wire, _ := call.Marshal(c)
		if err := appEnd.Write(wire); err != nil {
			log.Fatal(err)
		}
	})

	eng.Run(hydra.Seconds(1))
	fmt.Printf("done: NIC busy %v, bus moved %d bytes\n", nic.BusyTime(), b.Total().Bytes)

	// Close the session: the Offcode stops and every channel ring the
	// session pinned returns to the host's memory ledger.
	live := sys.Host("host").Machine.LiveBytes()
	if err := app.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session closed: reclaimed %d bytes of pinned memory\n",
		live-sys.Host("host").Machine.LiveBytes())
}
