// Package hydra is the public facade of the HYDRA reproduction: a
// programming model and runtime for offloading application components
// ("Offcodes") to programmable peripheral devices, after Weinsberg et al.,
// "Tapping into the Fountain of CPUs — On Operating System Support for
// Programmable Devices", ASPLOS 2008.
//
// The package re-exports the supported API surface from the internal
// packages. A typical OA-application:
//
//	eng := hydra.NewEngine(1)
//	host := hydra.NewHost(eng, "host", hydra.PentiumIV())
//	b := hydra.NewBus(eng, hydra.DefaultBusConfig())
//	nic := hydra.NewDevice(eng, host, b, hydra.XScaleNIC("nic0"))
//	dep := hydra.NewDepot()
//	rt := hydra.NewRuntime(eng, host, b, dep, hydra.RuntimeConfig{})
//	rt.RegisterDevice(nic)
//	// stock the depot with ODFs, objects and factories, then:
//	rt.Deploy("/offcodes/checksum.odf", func(h *hydra.Handle, err error) { ... })
//	eng.Run(hydra.Seconds(1))
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package hydra

import (
	"hydra/internal/bus"
	"hydra/internal/channel"
	"hydra/internal/core"
	"hydra/internal/depot"
	"hydra/internal/device"
	"hydra/internal/guid"
	"hydra/internal/hostos"
	"hydra/internal/layout"
	"hydra/internal/objfile"
	"hydra/internal/odf"
	"hydra/internal/sim"
)

// Simulation substrate.
type (
	// Engine is the discrete-event simulation engine all models share.
	Engine = sim.Engine
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Host is a simulated host machine (CPU, scheduler, L2).
	Host = hostos.Machine
	// HostConfig configures a host.
	HostConfig = hostos.Config
	// Bus is the host I/O interconnect.
	Bus = bus.Bus
	// BusConfig configures the interconnect.
	BusConfig = bus.Config
	// Device is a programmable peripheral.
	Device = device.Device
	// DeviceConfig configures a device.
	DeviceConfig = device.Config
	// DeviceClass describes a device class for ODF target matching.
	DeviceClass = device.Class
)

// HYDRA programming model and runtime.
type (
	// Runtime is the HYDRA runtime: deployment, channels, resources.
	Runtime = core.Runtime
	// RuntimeConfig tunes resolver, objective and loader choices.
	RuntimeConfig = core.Config
	// Handle identifies a deployed Offcode instance.
	Handle = core.Handle
	// Offcode is the behaviour contract (IOffcode).
	Offcode = core.Offcode
	// OffcodeContext is passed to Offcode.Initialize.
	OffcodeContext = core.Context
	// ChannelProvider builds channels for a device.
	ChannelProvider = core.ChannelProvider
	// Depot is the Offcode library (ODFs, objects, factories).
	Depot = depot.Depot
	// Channel is a communication pathway between endpoints.
	Channel = channel.Channel
	// ChannelConfig mirrors the paper's channel configuration.
	ChannelConfig = channel.Config
	// Endpoint is one end of a channel.
	Endpoint = channel.Endpoint
	// ODF is a parsed Offcode Description File.
	ODF = odf.ODF
	// Interface is a parsed Offcode interface definition.
	Interface = odf.Interface
	// GUID names Offcodes and interfaces.
	GUID = guid.GUID
	// Object is an HOBJ Offcode binary.
	Object = objfile.Object
	// LayoutGraph is the offloading layout graph of §5.
	LayoutGraph = layout.Graph
	// Placement maps Offcodes to targets.
	Placement = layout.Placement
)

// Constructors and helpers.
var (
	// NewEngine creates a simulation engine with the given seed.
	NewEngine = sim.NewEngine
	// NewHost creates a host machine.
	NewHost = hostos.New
	// PentiumIV is the paper's testbed host profile.
	PentiumIV = hostos.PentiumIV
	// NewBus creates the I/O interconnect.
	NewBus = bus.New
	// DefaultBusConfig is a PCI-class interconnect.
	DefaultBusConfig = bus.DefaultConfig
	// NewDevice attaches a programmable device.
	NewDevice = device.New
	// XScaleNIC is a programmable-NIC profile like the paper's 3Com card.
	XScaleNIC = device.XScaleNIC
	// NewDepot creates an empty Offcode depot.
	NewDepot = depot.New
	// NewRuntime creates the HYDRA runtime on a host.
	NewRuntime = core.New
	// DefaultChannelConfig is the Figure 3 channel: reliable, zero-copy,
	// sequential unicast.
	DefaultChannelConfig = channel.DefaultConfig
	// ParseODF parses an Offcode Description File.
	ParseODF = odf.Parse
	// ParseInterface parses an interface definition.
	ParseInterface = odf.ParseInterface
	// SynthesizeObject fabricates an HOBJ Offcode binary.
	SynthesizeObject = objfile.Synthesize
	// Seconds converts seconds to virtual Time.
	Seconds = sim.Seconds
)

// Layout resolvers and objectives.
const (
	// ResolveGreedy is the fast layout heuristic.
	ResolveGreedy = core.ResolveGreedy
	// ResolveILP is the §5 optimal integer program.
	ResolveILP = core.ResolveILP
	// MaximizeOffload offloads as many Offcodes as possible.
	MaximizeOffload = layout.MaximizeOffload
	// MaximizeBusUsage maximizes offloaded bandwidth under bus budgets.
	MaximizeBusUsage = layout.MaximizeBusUsage
)
