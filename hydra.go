// Package hydra is the public facade of the HYDRA reproduction: a
// programming model and runtime for offloading application components
// ("Offcodes") to programmable peripheral devices, after Weinsberg et al.,
// "Tapping into the Fountain of CPUs — On Operating System Support for
// Programmable Devices", ASPLOS 2008.
//
// The package re-exports the supported API surface from the internal
// packages. A typical OA-application declares its machine — including its
// application sessions — as a testbed spec, builds it in one step, and
// deploys through a transactional plan:
//
//	sys, err := hydra.NewTestbed(1, hydra.TestbedSpec{
//		Hosts: []hydra.HostSpec{{
//			Name:    "host",
//			Devices: []hydra.DeviceConfig{hydra.XScaleNIC("nic0")},
//			Runtime: &hydra.RuntimeConfig{},
//			Apps:    []hydra.AppSpec{{Name: "myapp"}},
//		}},
//	})
//	app := sys.Host("host").App("myapp")
//	// stock sys.Host("host").Depot with ODFs, objects and factories, then:
//	plan := app.Plan()
//	_ = plan.AddRoot("/offcodes/checksum.odf") // rejects duplicate binds
//	preview, _ := plan.Solve()                 // placement, no hardware touched
//	plan.Commit(func(dep *hydra.Deployment, err error) { ... }) // atomic
//	sys.Eng.Run(hydra.Seconds(1))
//	_ = app.Close() // stops the app's Offcodes, releases every ring and pin
//	_ = preview
//
// Sessions opened with OpenApp carry memory/channel/Offcode quotas and an
// admission-controlled device-memory reservation; Commit rolls back every
// Offcode and pinned ring on partial failure.
//
// A committed deployment stays mutable: App.Mutate applies deploy/
// replace/remove deltas against the live session, and App.Replace
// hot-swaps one running Offcode — channel traffic is quiesced, held and
// replayed exactly once around the swap, with the old instance's
// checkpoint carried into the new one and atomic rollback on failure.
//
// Above the single host, hydra.NewCluster opens a coordinator over every
// runtime host of a multi-host testbed: a ClusterPlan shards an Offcode
// graph across machines (AddRoot/Connect → Solve → Commit, with
// cluster-wide rollback), cross-host edges materialize as Bridge
// proxy-channel pairs over simulated inter-host links, and
// Cluster.FailHost migrates a dead machine's checkpointed Offcodes onto
// the surviving hosts. Cluster.Mutate re-solves the shard assignment
// incrementally (only affected shards move; untouched hosts never
// redeploy), and hydra.NewAutoscaler drives Grow/Shrink on a shard set
// from observed per-epoch load.
//
// Scenario fleets run through hydra.Sweep: one engine per replica on a
// worker pool, bit-identical to a serial loop.
//
// See README.md for the quickstart, examples/ for complete programs and
// DESIGN.md for the architecture.
package hydra

import (
	"hydra/internal/autoscale"
	"hydra/internal/bus"
	"hydra/internal/channel"
	"hydra/internal/cluster"
	"hydra/internal/core"
	"hydra/internal/depot"
	"hydra/internal/device"
	"hydra/internal/faults"
	"hydra/internal/flowtable"
	"hydra/internal/guid"
	"hydra/internal/hostos"
	"hydra/internal/layout"
	"hydra/internal/loadgen"
	"hydra/internal/objfile"
	"hydra/internal/odf"
	"hydra/internal/resource"
	"hydra/internal/sim"
	"hydra/internal/syscall"
	"hydra/internal/testbed"
)

// Simulation substrate.
type (
	// Engine is the discrete-event simulation engine all models share.
	Engine = sim.Engine
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Host is a simulated host machine (CPU, scheduler, L2).
	Host = hostos.Machine
	// HostConfig configures a host.
	HostConfig = hostos.Config
	// Bus is the host I/O interconnect.
	Bus = bus.Bus
	// BusConfig configures the interconnect.
	BusConfig = bus.Config
	// Device is a programmable peripheral.
	Device = device.Device
	// DeviceConfig configures a device.
	DeviceConfig = device.Config
	// DeviceClass describes a device class for ODF target matching.
	DeviceClass = device.Class
)

// HYDRA programming model and runtime.
type (
	// Runtime is the HYDRA runtime: deployment, channels, resources.
	Runtime = core.Runtime
	// RuntimeConfig tunes resolver, objective and loader choices.
	RuntimeConfig = core.Config
	// App is an application session opened via Runtime.OpenApp: the owner
	// of a quota-bounded resource subtree, deployment plans and channels.
	App = core.App
	// AppConfig sizes a session at admission: quotas plus the
	// device-memory reservation admission control checks.
	AppConfig = core.AppConfig
	// DeployPlan is the transactional deployment API: AddRoot → Solve
	// (placement preview) → Commit (atomic, with rollback).
	DeployPlan = core.DeployPlan
	// DeployPreview is a solved plan's per-Offcode placement forecast.
	DeployPreview = core.Preview
	// DeployAssignment is one Offcode's placement in a DeployPreview.
	DeployAssignment = core.Assignment
	// Deployment is the typed result of DeployPlan.Commit.
	Deployment = core.Deployment
	// RootOption tunes DeployPlan.AddRoot (e.g. hydra.NoReuse).
	RootOption = core.RootOption
	// MutationDelta is one live-mutation step for App.Mutate (one of
	// DeployDelta, ReplaceDelta, RemoveDelta).
	MutationDelta = core.Delta
	// DeployDelta deploys a new root into a live session.
	DeployDelta = core.DeployDelta
	// ReplaceDelta hot-swaps a running Offcode: quiesce, checkpoint,
	// swap, replay — with atomic rollback on failure.
	ReplaceDelta = core.ReplaceDelta
	// RemoveDelta stops and removes a running Offcode.
	RemoveDelta = core.RemoveDelta
	// MutationResult is the typed result of App.Mutate / App.Replace.
	MutationResult = core.MutationResult
	// ResourceNode is a node of the hierarchical resource manager; App
	// quota usage is read off App.Resources().
	ResourceNode = resource.Node
	// QuotaError reports a charge rejected by a resource quota.
	QuotaError = resource.QuotaError
	// Handle identifies a deployed Offcode instance.
	Handle = core.Handle
	// Offcode is the behaviour contract (IOffcode).
	Offcode = core.Offcode
	// OffcodeContext is passed to Offcode.Initialize.
	OffcodeContext = core.Context
	// ChannelProvider builds channels for a device.
	ChannelProvider = core.ChannelProvider
	// Depot is the Offcode library (ODFs, objects, factories).
	Depot = depot.Depot
	// Channel is a communication pathway between endpoints.
	Channel = channel.Channel
	// ChannelConfig mirrors the paper's channel configuration, including
	// the descriptor-ring batching and interrupt-coalescing knobs.
	ChannelConfig = channel.Config
	// ChannelStats counts channel activity: deliveries, drops, interrupts,
	// batches, coalesce flushes, scatter-gather writes, undelivered sends.
	ChannelStats = channel.Stats
	// ChannelSyncMode selects sequential or concurrent handler dispatch.
	ChannelSyncMode = channel.SyncMode
	// Endpoint is one end of a channel.
	Endpoint = channel.Endpoint
	// ODF is a parsed Offcode Description File.
	ODF = odf.ODF
	// Interface is a parsed Offcode interface definition.
	Interface = odf.Interface
	// GUID names Offcodes and interfaces.
	GUID = guid.GUID
	// Object is an HOBJ Offcode binary.
	Object = objfile.Object
	// LayoutGraph is the offloading layout graph of §5.
	LayoutGraph = layout.Graph
	// Placement maps Offcodes to targets.
	Placement = layout.Placement
)

// Declarative testbed layer: topologies as data, scenarios as a fleet.
type (
	// TestbedSpec declares a whole topology — hosts, devices, buses,
	// runtimes, NAS appliances, network — as data for BuildTestbed.
	TestbedSpec = testbed.Spec
	// HostSpec declares one host inside a TestbedSpec.
	HostSpec = testbed.HostSpec
	// AppSpec declares one application session on a host's runtime, so
	// multi-tenant workloads are topology data.
	AppSpec = testbed.AppSpec
	// NetSpec declares the inter-host network.
	NetSpec = testbed.NetSpec
	// ChannelSpec names a channel configuration profile on a TestbedSpec
	// (ring depth, zero-copy policy, batching, interrupt coalescing).
	ChannelSpec = testbed.ChannelSpec
	// NASSpec declares a network-attached storage appliance.
	NASSpec = testbed.NASSpec
	// FileSpec is one file pre-loaded onto a NAS.
	FileSpec = testbed.FileSpec
	// MutationSpec schedules one declarative live Offcode hot-swap on a
	// TestbedSpec (Spec.Mutations), armed on the host's own engine.
	MutationSpec = testbed.MutationSpec
	// MutationOutcome records one armed mutation's result after it fires
	// (TestbedSystem.MutationOutcomes).
	MutationOutcome = testbed.MutationOutcome
	// TestbedSystem is a built TestbedSpec, addressable by declared names.
	TestbedSystem = testbed.System
	// HostSystem is one built host inside a TestbedSystem.
	HostSystem = testbed.HostSystem
	// SweepConfig sizes a parallel scenario sweep.
	SweepConfig = testbed.SweepConfig
	// Replica identifies one run of a sweep (index + seed).
	Replica = testbed.Replica
)

// Device-initiated host syscalls: the batched reverse-RPC plane where
// Offcodes issue typed syscalls against the host's virtual file/net
// surface (internal/syscall; X11).
type (
	// SyscallProfile tunes one device's syscall plane: batch depth and
	// coalescing window on the wire, issue-credit quota, host dispatcher
	// workers, completion-ring size.
	SyscallProfile = syscall.Profile
	// SyscallStats merges the device- and host-side counters of a plane:
	// issued, dispatched, executed, completed, denied, deduped, replayed.
	SyscallStats = syscall.Stats
	// SyscallIssuer is the device-side issue API: typed wrappers
	// (Open/Read/Write/Send/MapMem/Log/Clock) over a generic Issue, with
	// checkpoint/restore for exactly-once completion across hot-swaps.
	SyscallIssuer = syscall.Issuer
	// SyscallService is the host-side dispatcher: a worker pool executing
	// unmarshaled calls against the host VFS with at-most-once dedup.
	SyscallService = syscall.Service
	// SyscallCompletion is what a syscall continuation receives.
	SyscallCompletion = syscall.Completion
	// SyscallOp names one host syscall operation (OpOpen … OpClock).
	SyscallOp = syscall.Op
	// SyscallMode selects blocking, completion-ring, or fire-and-forget
	// dispatch for one call.
	SyscallMode = syscall.Mode
	// SyscallSpec gives a testbed host's devices syscall planes at build
	// time (HostSpec.Syscalls).
	SyscallSpec = testbed.SyscallSpec
	// SyscallPlane is the live plane App.OpenSyscalls returns, with its
	// credit node parked in the session's resource subtree.
	SyscallPlane = core.SyscallPlane
	// HostVFS is the virtual file/net/map surface syscalls execute
	// against; NFS mounts extend it across the simulated network.
	HostVFS = hostos.VFS
)

// Syscall dispatch modes.
const (
	// SyscallSync blocks the issuing Offcode until the completion DMA.
	SyscallSync = syscall.ModeSync
	// SyscallAsync returns immediately; the completion lands on the ring.
	SyscallAsync = syscall.ModeAsync
	// SyscallFireForget expects no completion at all.
	SyscallFireForget = syscall.ModeFireForget
)

// Syscall plane constructors and profiles.
var (
	// DefaultSyscallProfile is the batched plane (batch 8, 5 µs coalesce).
	DefaultSyscallProfile = syscall.DefaultProfile
	// BlockingSyscallProfile disables batching: one call, one interrupt.
	BlockingSyscallProfile = syscall.BlockingProfile
	// NewSyscallIssuer builds a device-side issuer (attach to a channel
	// endpoint with Attach).
	NewSyscallIssuer = syscall.NewIssuer
	// NewSyscallService builds the host-side dispatcher over a VFS.
	NewSyscallService = syscall.NewService
	// NewHostVFS builds an empty virtual file/net surface on a host.
	NewHostVFS = hostos.NewVFS
	// NewNFSMount adapts an NFS client into a HostVFS mount, so device
	// syscalls reach network storage through the host surface.
	NewNFSMount = syscall.NewNFSAdapter
)

// Cluster layer: multi-host Offcode graphs scheduled over every runtime
// host of a testbed, inter-host proxy channels, and cross-host failover.
type (
	// Cluster is the coordinator scheduling Offcode graphs across the
	// runtime hosts of a TestbedSystem (hydra.NewCluster).
	Cluster = cluster.Coordinator
	// ClusterConfig tunes the coordinator: per-host session quotas, the
	// shard assignment resolver, link models and the bridge channel
	// profile.
	ClusterConfig = cluster.Config
	// ClusterPlan is the cluster-wide transactional deployment: AddRoot
	// and Connect accumulate a multi-host graph, Solve previews the host
	// assignment, Commit deploys with cluster-wide rollback.
	ClusterPlan = cluster.Plan
	// ClusterPreview is a solved cluster plan: per-shard hosts, cut
	// edges, link cost, and each host's device-level preview.
	ClusterPreview = cluster.Preview
	// ClusterDeployment is the typed result of ClusterPlan.Commit.
	ClusterDeployment = cluster.Deployment
	// ClusterRootOption tunes ClusterPlan.AddRoot (hydra.PinTo,
	// hydra.WithLoad).
	ClusterRootOption = cluster.RootOption
	// Bridge materializes one cluster edge: a proxy-channel pair, plus a
	// forwarder Offcode on each host when the edge crosses hosts.
	Bridge = cluster.Bridge
	// Link models an inter-host link: one-way latency plus bandwidth.
	Link = cluster.Link
	// LinkSpec overrides the link between one host pair.
	LinkSpec = cluster.LinkSpec
	// Traffic estimates a cluster edge's load for the placement solver.
	Traffic = cluster.Traffic
	// ClusterMigration records one host failure the coordinator healed
	// from (Coordinator.FailHost / Migrations).
	ClusterMigration = cluster.Migration
	// ClusterShardDelta is one live-mutation step for Cluster.Mutate
	// (one of AddShard, RemoveShard, SwapShard).
	ClusterShardDelta = cluster.ShardDelta
	// AddShard grows a live cluster deployment by one shard.
	AddShard = cluster.AddShard
	// RemoveShard stops and removes one shard (its bridges tear down).
	RemoveShard = cluster.RemoveShard
	// SwapShard hot-swaps one shard's Offcode in place on its host.
	SwapShard = cluster.SwapShard
	// ShardEdge declares a new shard's connections for AddShard.
	ShardEdge = cluster.ShardEdge
	// ClusterMutation is the typed result of Cluster.Mutate: moved and
	// untouched hosts, swaps with their quiesce windows, rollback state.
	ClusterMutation = cluster.ClusterMutation
)

// Autoscaling: a mechanism-free epoch controller growing and shrinking a
// shard set against observed load (internal/autoscale; X10).
type (
	// Autoscaler evaluates per-epoch load and drives its AutoscaleTarget.
	Autoscaler = autoscale.Controller
	// AutoscaleConfig sets per-shard capacity, the utilization hysteresis
	// band, shard-count bounds and the action cooldown.
	AutoscaleConfig = autoscale.Config
	// AutoscaleTarget is the shard set an Autoscaler grows and shrinks —
	// typically implemented with Cluster.Mutate.
	AutoscaleTarget = autoscale.Target
	// AutoscaleDecision records one controller epoch: rate, utilization,
	// shard count and the action taken.
	AutoscaleDecision = autoscale.Decision
)

// Data plane: shard-local match-action pipelines over connection-tracking
// flow tables, plus the open-loop flow-churn generator that drives them
// (internal/flowtable, internal/loadgen; X12).
type (
	// FlowKey is the 13-byte packed five-tuple identifying one flow;
	// FlowKey.Shard hashes it to a cluster shard (RSS style).
	FlowKey = flowtable.Key
	// FlowAction is a cached per-flow verdict (FlowForward …).
	FlowAction = flowtable.Action
	// FlowTableConfig bounds one shard-local table: a byte quota
	// (capacity = quota / 64-byte entries) and an idle timeout.
	FlowTableConfig = flowtable.Config
	// FlowTable is one shard's conntrack state: hash map + intrusive LRU
	// under a memory quota, with bit-exact Checkpoint/Restore/Digest.
	FlowTable = flowtable.Table
	// FlowTableStats counts lookups/hits/misses/inserts/evictions/
	// expirations over a table's lifetime (carried across hot-swaps).
	FlowTableStats = flowtable.Stats
	// FlowRule maps a match (dst-port range) to a verdict for
	// first-packet classification.
	FlowRule = flowtable.Rule
	// FlowPipelineConfig assembles a match-action pipeline: rules, the
	// table quota, rewrite backends.
	FlowPipelineConfig = flowtable.PipelineConfig
	// FlowPipeline is the NIC-resident match-action pipeline: cached
	// verdicts from the flow table, rule classification on a miss.
	FlowPipeline = flowtable.Pipeline
	// LoadGenConfig tunes the open-loop generator: rate, Poisson tick,
	// concurrent flows, Zipf size tail, destination port mix.
	LoadGenConfig = loadgen.Config
	// LoadGen is the open-loop flow-churn generator; Digest is its
	// determinism witness.
	LoadGen = loadgen.Gen
	// LoadGenPacket is one generated packet: flow key, sequence number,
	// payload size, and whether it retires its flow.
	LoadGenPacket = loadgen.Packet
)

// Flow verdicts.
const (
	// FlowForward passes the packet through unchanged.
	FlowForward = flowtable.ActForward
	// FlowRewrite rewrites to a load-balanced backend.
	FlowRewrite = flowtable.ActRewrite
	// FlowDrop drops at the NIC.
	FlowDrop = flowtable.ActDrop
	// FlowCount counts and forwards.
	FlowCount = flowtable.ActCount
)

// Data-plane constructors.
var (
	// NewFlowTable builds an empty conntrack table under a config.
	NewFlowTable = flowtable.New
	// NewFlowPipeline builds a match-action pipeline (table + rules).
	NewFlowPipeline = flowtable.NewPipeline
	// DecodeFlowKey parses a 13-byte wire key.
	DecodeFlowKey = flowtable.DecodeKey
	// NewLoadGen builds a seeded open-loop generator.
	NewLoadGen = loadgen.New
)

// Fault injection and self-healing: declarative fault schedules replayed by
// a seeded injector, a runtime health monitor, and Offcode migration.
type (
	// FaultSchedule is a replayable fault script (testbed Spec.Faults).
	FaultSchedule = faults.Schedule
	// FaultEntry is one declarative fault in a FaultSchedule.
	FaultEntry = faults.Entry
	// FaultKind selects a fault type (DeviceCrash, BusDegrade, ...).
	FaultKind = faults.Kind
	// FaultInjector replays fault schedules on an engine.
	FaultInjector = faults.Injector
	// FaultRecord is one fault the injector actually applied.
	FaultRecord = faults.Record
	// MonitorConfig tunes the runtime health monitor (HostSpec.Monitor).
	MonitorConfig = core.MonitorConfig
	// HealthMonitor is a running runtime health monitor.
	HealthMonitor = core.Monitor
	// Recovery records one device failure the runtime healed from.
	Recovery = core.Recovery
	// Checkpointer lets an Offcode carry state across a migration.
	Checkpointer = core.Checkpointer
	// DeviceHealth is a device's failure state.
	DeviceHealth = device.Health
)

// Fault kinds and device health states.
const (
	// DeviceCrash kills a device (local memory lost; optional auto-restart).
	DeviceCrash = faults.DeviceCrash
	// DeviceHang wedges firmware (memory survives a restart).
	DeviceHang = faults.DeviceHang
	// DeviceRestart restores a failed device.
	DeviceRestart = faults.DeviceRestart
	// BusDegrade multiplies a host bus's wire time.
	BusDegrade = faults.BusDegrade
	// BusOutage blocks a host bus for a duration.
	BusOutage = faults.BusOutage
	// HealthOK is a healthy, work-executing device.
	HealthOK = device.HealthOK
	// HealthHung is wedged firmware (local memory survives a restart).
	HealthHung = device.HealthHung
	// HealthCrashed is a dead device (local memory lost on restart).
	HealthCrashed = device.HealthCrashed
	// SyncSequential serializes channel handler invocations per endpoint.
	SyncSequential = channel.SyncSequential
	// SyncConcurrent dispatches each channel message as it arrives.
	SyncConcurrent = channel.SyncConcurrent
)

// Sweep runs one scenario replica per seed on a worker pool, each replica
// on its own engine; results come back in replica order and are
// bit-identical to a serial loop. See testbed.Sweep.
func Sweep[T any](cfg SweepConfig, run func(Replica) (T, error)) ([]T, error) {
	return testbed.Sweep(cfg, run)
}

// Constructors and helpers.
var (
	// BuildTestbed instantiates a TestbedSpec on an engine.
	BuildTestbed = testbed.Build
	// NewTestbed creates an engine from seed and builds a TestbedSpec on it.
	NewTestbed = testbed.New
	// GPUDevice is a programmable display-adapter profile (§6.3 client).
	GPUDevice = device.GPU
	// SmartDiskDevice is a programmable storage-controller profile (§6.1).
	SmartDiskDevice = device.SmartDisk
	// NewEngine creates a simulation engine with the given seed.
	NewEngine = sim.NewEngine
	// NewHost creates a host machine.
	NewHost = hostos.New
	// PentiumIV is the paper's testbed host profile.
	PentiumIV = hostos.PentiumIV
	// NewBus creates the I/O interconnect.
	NewBus = bus.New
	// DefaultBusConfig is a PCI-class interconnect.
	DefaultBusConfig = bus.DefaultConfig
	// NewDevice attaches a programmable device.
	NewDevice = device.New
	// XScaleNIC is a programmable-NIC profile like the paper's 3Com card.
	XScaleNIC = device.XScaleNIC
	// NewDepot creates an empty Offcode depot.
	NewDepot = depot.New
	// NewRuntime creates the HYDRA runtime on a host.
	NewRuntime = core.New
	// NewFaultInjector creates a deterministic fault injector on an engine.
	NewFaultInjector = faults.NewInjector
	// NewCluster opens a cluster coordinator over every runtime host of a
	// built testbed.
	NewCluster = cluster.New
	// NewAutoscaler creates an epoch-driven autoscale controller over a
	// target shard set.
	NewAutoscaler = autoscale.New
	// DefaultClusterLink is the default inter-host link model (~20 µs,
	// 1 Gb/s — the paper testbed's switched gigabit fabric).
	DefaultClusterLink = cluster.DefaultLink
	// PinTo forces a cluster root onto the named host.
	PinTo = cluster.PinTo
	// WithLoad sets a cluster root's placement weight (default 1).
	WithLoad = cluster.WithLoad
	// DefaultChannelConfig is the Figure 3 channel: reliable, zero-copy,
	// sequential unicast.
	DefaultChannelConfig = channel.DefaultConfig
	// OOBChannelConfig is the runtime's connectionless out-of-band channel.
	OOBChannelConfig = channel.OOBConfig
	// NewChannel creates a channel owned by a creator endpoint.
	NewChannel = channel.New
	// NewHostEndpoint builds a channel endpoint executing on a host.
	NewHostEndpoint = channel.HostEndpoint
	// NewDeviceEndpoint builds a channel endpoint executing on a device.
	NewDeviceEndpoint = channel.DeviceEndpoint
	// ParseODF parses an Offcode Description File.
	ParseODF = odf.Parse
	// ParseInterface parses an interface definition.
	ParseInterface = odf.ParseInterface
	// SynthesizeObject fabricates an HOBJ Offcode binary.
	SynthesizeObject = objfile.Synthesize
	// Seconds converts seconds to virtual Time.
	Seconds = sim.Seconds
)

// Session errors and quota kinds.
var (
	// ErrAppExists reports an OpenApp name collision.
	ErrAppExists = core.ErrAppExists
	// ErrAppClosed reports use of a closed session.
	ErrAppClosed = core.ErrAppClosed
	// ErrAdmission reports an OpenApp rejected by device-capacity
	// admission control.
	ErrAdmission = core.ErrAdmission
	// ErrDuplicateBind reports a bind name already deployed from a
	// different ODF or already present in a plan.
	ErrDuplicateBind = core.ErrDuplicateBind
	// NoReuse makes AddRoot reject an already-deployed root instead of
	// reusing the running instance.
	NoReuse = core.NoReuse
)

// Quota kinds booked in an App's resource subtree.
const (
	// QuotaMemory is pinned host memory in bytes.
	QuotaMemory = core.QuotaMemory
	// QuotaChannels counts concurrently open app-created channels.
	QuotaChannels = core.QuotaChannels
	// QuotaOffcodes counts live Offcodes owned by a session.
	QuotaOffcodes = core.QuotaOffcodes
)

// Layout resolvers and objectives.
const (
	// ResolveGreedy is the fast layout heuristic.
	ResolveGreedy = core.ResolveGreedy
	// ResolveILP is the §5 optimal integer program.
	ResolveILP = core.ResolveILP
	// MaximizeOffload offloads as many Offcodes as possible.
	MaximizeOffload = layout.MaximizeOffload
	// MaximizeBusUsage maximizes offloaded bandwidth under bus budgets.
	MaximizeBusUsage = layout.MaximizeBusUsage
)
